package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"opass/internal/plancache"
	"opass/internal/telemetry"
)

// replica builds one opassd-like server wired to the shared tier, with a
// planner-invocation counter.
func replica(t *testing.T, tier plancache.Tier, legacy bool) (*httptest.Server, *telemetry.Registry, *atomic.Int64) {
	t.Helper()
	reg := telemetry.NewRegistry()
	s := NewServer(ServerOptions{Registry: reg, RemoteTier: tier, LegacyDecode: legacy})
	var ran atomic.Int64
	s.plannerRan = func() { ran.Add(1) }
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return srv, reg, &ran
}

// TestTwoReplicasOnePlannerRun is the fleet-dedup acceptance check: two
// replicas sharing a memcached-protocol tier serve a repeated request with
// exactly one planner run between them, and return identical plans.
func TestTwoReplicasOnePlannerRun(t *testing.T) {
	mc, err := plancache.NewMemcachedServer()
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	tierA := plancache.NewRemote(mc.Addr(), plancache.RemoteOptions{})
	defer tierA.Close()
	tierB := plancache.NewRemote(mc.Addr(), plancache.RemoteOptions{})
	defer tierB.Close()

	srvA, regA, ranA := replica(t, tierA, false)
	srvB, regB, ranB := replica(t, tierB, false)

	req := layoutRequest("opass")
	respA, bodyA := post(t, srvA, "/v1/plan", req)
	if respA.StatusCode != 200 {
		t.Fatalf("replica A: %d %s", respA.StatusCode, bodyA)
	}
	if ranA.Load() != 1 {
		t.Fatalf("replica A planner runs = %d, want 1", ranA.Load())
	}
	if got := metricValue(t, regA, MetricPlanCacheRemoteSets); got != 1 {
		t.Fatalf("replica A remote sets = %v, want 1", got)
	}
	if got := metricValue(t, regA, MetricPlanCacheRemoteMisses); got != 1 {
		t.Fatalf("replica A remote misses = %v, want 1", got)
	}

	respB, bodyB := post(t, srvB, "/v1/plan", req)
	if respB.StatusCode != 200 {
		t.Fatalf("replica B: %d %s", respB.StatusCode, bodyB)
	}
	if ranB.Load() != 0 {
		t.Fatalf("replica B planner runs = %d, want 0 (plan adopted from the tier)", ranB.Load())
	}
	if got := metricValue(t, regB, MetricPlanCacheRemoteHits); got != 1 {
		t.Fatalf("replica B remote hits = %v, want 1", got)
	}

	var planA, planB PlanResponse
	if err := json.Unmarshal(bodyA, &planA); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(bodyB, &planB); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(planA.Owner) != fmt.Sprint(planB.Owner) ||
		fmt.Sprint(planA.Lists) != fmt.Sprint(planB.Lists) ||
		planA.LocalityFraction != planB.LocalityFraction {
		t.Fatalf("replicas disagree:\nA: %+v\nB: %+v", planA, planB)
	}

	// Replica B's copy now also lives in its L1: a third request runs no
	// planner and touches no counters on A.
	post(t, srvB, "/v1/plan", req)
	if ranA.Load()+ranB.Load() != 1 {
		t.Fatalf("total planner runs = %d after 3 requests, want 1", ranA.Load()+ranB.Load())
	}

	// A different request misses the tier and plans locally.
	other := layoutRequest("opass")
	other.Seed = 99
	post(t, srvA, "/v1/plan", other)
	if ranA.Load() != 2 {
		t.Fatalf("replica A planner runs = %d after distinct request, want 2", ranA.Load())
	}
}

// TestTierKeyspaceSeparatesDecodePaths: the legacy and streaming decoders
// build the mirror FS differently (incremental vs bulk), so their snapshot
// epochs differ and they must not serve each other's tier entries.
func TestTierKeyspaceSeparatesDecodePaths(t *testing.T) {
	tier := plancache.NewMemoryTier(plancache.Options{MaxEntries: 64})
	srvA, _, ranA := replica(t, tier, false) // streaming
	srvC, _, ranC := replica(t, tier, true)  // legacy

	req := layoutRequest("opass")
	post(t, srvA, "/v1/plan", req)
	post(t, srvC, "/v1/plan", req)
	if ranA.Load() != 1 || ranC.Load() != 1 {
		t.Fatalf("planner runs A=%d C=%d, want 1 and 1 (disjoint keyspaces)", ranA.Load(), ranC.Load())
	}
	// Same path, same keyspace: a second streaming replica dedupes.
	srvB, _, ranB := replica(t, tier, false)
	post(t, srvB, "/v1/plan", req)
	if ranB.Load() != 0 {
		t.Fatalf("second streaming replica ran the planner %d times, want 0", ranB.Load())
	}
}

// TestTierFailureDegradesToLocal: a dead remote tier must cost errors
// counters only — every request still plans locally and succeeds.
func TestTierFailureDegradesToLocal(t *testing.T) {
	mc, err := plancache.NewMemcachedServer()
	if err != nil {
		t.Fatal(err)
	}
	addr := mc.Addr()
	mc.Close() // tier backend is down before the first request
	r := plancache.NewRemote(addr, plancache.RemoteOptions{})
	defer r.Close()

	srv, reg, ran := replica(t, r, false)
	resp, body := post(t, srv, "/v1/plan", layoutRequest("opass"))
	if resp.StatusCode != 200 {
		t.Fatalf("request failed with dead tier: %d %s", resp.StatusCode, body)
	}
	if ran.Load() != 1 {
		t.Fatalf("planner runs = %d, want 1", ran.Load())
	}
	if got := metricValue(t, reg, MetricPlanCacheRemoteErrors); got < 2 {
		t.Fatalf("remote errors = %v, want >= 2 (failed get + failed set)", got)
	}
}
