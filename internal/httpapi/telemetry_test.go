package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"opass/internal/telemetry"
)

func scrape(t *testing.T, srv *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	// Drive traffic: two plans (different strategies), one simulate, one
	// rejected request.
	for _, s := range []string{"opass", "greedy"} {
		resp, body := post(t, srv, "/v1/plan", layoutRequest(s))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("plan %s: %d %s", s, resp.StatusCode, body)
		}
	}
	if resp, _ := post(t, srv, "/v1/simulate", layoutRequest("opass")); resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %d", resp.StatusCode)
	}
	if resp, _ := post(t, srv, "/v1/plan", PlanRequest{Nodes: 0}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad plan: %d", resp.StatusCode)
	}

	out := scrape(t, srv)
	for _, want := range []string{
		// Request accounting from the middleware, labeled per route
		// (labels render in sorted key order).
		`opass_http_requests_total{method="POST",route="/v1/plan",status="200"} 2`,
		`opass_http_requests_total{method="POST",route="/v1/simulate",status="200"} 1`,
		`opass_http_requests_total{method="POST",route="/v1/plan",status="400"} 1`,
		`opass_http_request_duration_seconds_count{route="/v1/plan"} 3`,
		// Per-strategy planner-latency histograms recorded inside
		// computePlan(). The simulate request reuses the cached opass plan
		// from the identical /v1/plan request, so opass-flow ran once.
		`opass_planner_latency_seconds_count{strategy="opass-flow"} 1`,
		`opass_planner_latency_seconds_count{strategy="opass-greedy"} 1`,
		`opass_planner_latency_seconds_bucket{strategy="opass-flow",le="+Inf"} 1`,
		// Locality fractions: the 4-node matching layout plans fully local.
		`opass_plan_locality_fraction_count{strategy="opass-flow"} 1`,
		// Plan-cache accounting: opass + greedy missed, simulate hit.
		"opass_plan_cache_misses_total 2",
		"opass_plan_cache_hits_total 1",
		"opass_plan_cache_entries 2",
		// Engine gauges updated after /v1/simulate.
		"opass_sim_runs_total 1",
		"opass_sim_last_tasks_run 8",
		"opass_sim_last_retries 0",
		"opass_sim_last_local_fraction 1",
		`opass_requests_rejected_total{reason="invalid"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if !strings.Contains(out, "opass_sim_last_makespan_seconds") {
		t.Error("scrape missing makespan gauge")
	}
	if t.Failed() {
		t.Logf("full scrape:\n%s", out)
	}
}

func TestMetricsSharedRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := httptest.NewServer(NewHandler(ServerOptions{Registry: reg}))
	defer srv.Close()
	post(t, srv, "/v1/plan", layoutRequest("rank"))
	if got := reg.Counter(MetricPlans, telemetry.L("strategy", "rank-static")).Value(); got != 1 {
		t.Fatalf("shared registry plans counter = %v, want 1", got)
	}
}

func TestRequestIDAndLogging(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(lockedWriter{&mu, &buf}, nil))
	srv := httptest.NewServer(NewHandler(ServerOptions{Logger: logger}))
	defer srv.Close()

	resp, _ := post(t, srv, "/v1/plan", layoutRequest(""))
	if resp.Header.Get(telemetry.RequestIDHeader) == "" {
		t.Fatal("response missing X-Request-Id")
	}
	mu.Lock()
	logged := buf.String()
	mu.Unlock()
	var entry map[string]any
	if err := json.Unmarshal([]byte(strings.Split(strings.TrimSpace(logged), "\n")[0]), &entry); err != nil {
		t.Fatalf("bad log line %q: %v", logged, err)
	}
	if entry["route"] != "/v1/plan" || entry["status"] != float64(200) {
		t.Fatalf("log entry: %v", entry)
	}
	if entry["id"] != resp.Header.Get(telemetry.RequestIDHeader) {
		t.Fatal("logged request id does not match response header")
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

func TestBodyTooLargeReturns413(t *testing.T) {
	srv := httptest.NewServer(NewHandler(ServerOptions{
		Limits: RequestLimits{BodyBytes: 64 << 10},
	}))
	defer srv.Close()
	// An over-limit body must be rejected with 413 and a clean JSON
	// envelope, not a generic 400 leaking the Go error string — and the
	// connection must be closed, since MaxBytesReader poisoned the stream.
	big := make([]byte, (64<<10)+1024)
	for i := range big {
		big[i] = ' '
	}
	copy(big, `{"nodes": 4, "tasks": [`)
	resp, err := http.Post(srv.URL+"/v1/plan", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	if !resp.Close && resp.Header.Get("Connection") != "close" {
		t.Error("413 response does not close the poisoned connection")
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("413 body is not the JSON envelope: %v", err)
	}
	if !strings.Contains(e.Error, "exceeds") || strings.Contains(e.Error, "http:") {
		t.Fatalf("unclean 413 message: %q", e.Error)
	}
	if !strings.Contains(scrape(t, srv), `opass_requests_rejected_total{reason="too_large"} 1`) {
		t.Error("rejection not counted")
	}
}

func TestProcNodesValidation(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	req := layoutRequest("")
	req.ProcNodes = []int{0, 1, 2, 7}
	resp, body := post(t, srv, "/v1/plan", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	json.Unmarshal(body, &e)
	if !strings.Contains(e.Error, "proc_nodes[3]") {
		t.Fatalf("error %q does not name the offending entry", e.Error)
	}
	// Oversized process lists are refused up front with a specific message.
	req = layoutRequest("")
	req.ProcNodes = make([]int, (1<<16)+1)
	resp, body = post(t, srv, "/v1/plan", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized proc_nodes status = %d, want 400", resp.StatusCode)
	}
	json.Unmarshal(body, &e)
	if !strings.Contains(e.Error, "proc_nodes") || !strings.Contains(e.Error, "maximum") {
		t.Fatalf("oversized proc_nodes error %q lacks a specific message", e.Error)
	}
}

// TestConcurrentHandlers hammers plan/simulate/metrics from many goroutines;
// under -race it proves the registry and the stateless planners are
// race-free.
func TestConcurrentHandlers(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := httptest.NewServer(NewHandler(ServerOptions{Registry: reg}))
	defer srv.Close()

	const workers, iters = 8, 10
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			strategies := []string{"opass", "rank", "random", "greedy"}
			for i := 0; i < iters; i++ {
				req := layoutRequest(strategies[(w+i)%len(strategies)])
				req.Seed = int64(w*1000 + i)
				path := "/v1/plan"
				if (w+i)%3 == 0 {
					path = "/v1/simulate"
				}
				raw, _ := json.Marshal(req)
				resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(raw))
				if err != nil {
					errs <- err
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s: status %d", path, resp.StatusCode)
				}
				if i%4 == 0 {
					r2, err := http.Get(srv.URL + "/metrics")
					if err != nil {
						errs <- err
						continue
					}
					io.Copy(io.Discard, r2.Body)
					r2.Body.Close()
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	var total float64
	for _, s := range []string{"opass-flow", "rank-static", "random-static", "opass-greedy"} {
		total += reg.Counter(MetricPlans, telemetry.L("strategy", s)).Value()
	}
	if total != workers*iters {
		t.Fatalf("plans counted = %v, want %d", total, workers*iters)
	}
}
