// Package metrics computes the statistics the paper reports: per-request
// I/O time summaries (average, maximum, minimum, standard deviation — the
// three metrics of Figures 7–11), per-node served-data loads (the balance
// metric of Figures 1, 8 and 10), Jain's fairness index as an aggregate
// balance score, and simple histograms and traces for figure regeneration.
package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Summary holds the distribution statistics of a sample.
type Summary struct {
	Count  int
	Sum    float64
	Mean   float64
	Min    float64
	Max    float64
	StdDev float64
}

// Summarize computes a Summary over xs. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	if len(xs) == 0 {
		return s
	}
	s.Count = len(xs)
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.Count)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(s.Count))
	return s
}

// Spread is the max/min ratio the paper quotes ("the maximum I/O time is 9X
// that of the minimum"). It returns +Inf when Min is zero and the sample is
// non-empty.
func (s Summary) Spread() float64 {
	if s.Count == 0 {
		return 0
	}
	if s.Min == 0 {
		return math.Inf(1)
	}
	return s.Max / s.Min
}

// String renders the summary in bench-harness row format.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f min=%.3f max=%.3f sd=%.3f", s.Count, s.Mean, s.Min, s.Max, s.StdDev)
}

// Percentile returns the p-th percentile (0..100) of xs using
// nearest-rank on a sorted copy. It panics on an empty sample or a
// percentile outside [0,100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("metrics: percentile of empty sample")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("metrics: percentile %v out of range", p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p == 0 {
		return sorted[0]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	return sorted[rank-1]
}

// JainIndex computes Jain's fairness index sum(x)^2 / (n*sum(x^2)): 1.0 for
// a perfectly balanced load vector, approaching 1/n as the load concentrates
// on one node.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1 // all zero: trivially balanced
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// Histogram buckets values into equal-width bins over [lo, hi); values
// outside the range clamp to the first/last bin.
type Histogram struct {
	Lo, Hi float64
	Bins   []int
}

// NewHistogram creates a histogram with n bins spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic(fmt.Sprintf("metrics: bad histogram range [%v,%v) with %d bins", lo, hi, n))
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, n)}
}

// Add records one observation. NaN observations are dropped (converting
// NaN to int is implementation-defined in Go, so they must not reach the
// index arithmetic); ±Inf clamps to the first/last bin like any other
// out-of-range value.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	if x < h.Lo { // covers -Inf
		h.Bins[0]++
		return
	}
	if x >= h.Hi { // covers +Inf
		h.Bins[len(h.Bins)-1]++
		return
	}
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Bins)))
	// Float rounding at the top edge can still land one past the end.
	if i >= len(h.Bins) {
		i = len(h.Bins) - 1
	}
	h.Bins[i]++
}

// Total reports the number of observations recorded.
func (h *Histogram) Total() int {
	t := 0
	for _, b := range h.Bins {
		t += b
	}
	return t
}

// CDF returns the cumulative fraction at each bin upper edge.
func (h *Histogram) CDF() []float64 {
	out := make([]float64, len(h.Bins))
	total := h.Total()
	if total == 0 {
		return out
	}
	run := 0
	for i, b := range h.Bins {
		run += b
		out[i] = float64(run) / float64(total)
	}
	return out
}

// BootstrapCI estimates a two-sided confidence interval for the mean of xs
// by resampling (percentile bootstrap): resamples draws with replacement,
// confidence in (0,1), rng seeded by the caller for reproducibility. It
// panics on an empty sample or out-of-range confidence.
func BootstrapCI(xs []float64, resamples int, confidence float64, seed int64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("metrics: bootstrap of empty sample")
	}
	if confidence <= 0 || confidence >= 1 {
		panic(fmt.Sprintf("metrics: confidence %v out of (0,1)", confidence))
	}
	if resamples <= 0 {
		resamples = 1000
	}
	rng := rand.New(rand.NewSource(seed))
	means := make([]float64, resamples)
	for i := range means {
		var s float64
		for j := 0; j < len(xs); j++ {
			s += xs[rng.Intn(len(xs))]
		}
		means[i] = s / float64(len(xs))
	}
	sort.Float64s(means)
	alpha := (1 - confidence) / 2
	loIdx := int(alpha * float64(resamples))
	hiIdx := int((1 - alpha) * float64(resamples))
	if hiIdx >= resamples {
		hiIdx = resamples - 1
	}
	return means[loIdx], means[hiIdx]
}

// Point is one sample of a time series.
type Point struct {
	T float64
	V float64
}

// Series is an append-only time series (e.g. per-read completion times in
// trace order, as plotted in Figures 7c, 9, 11 and 12).
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(t, v float64) { s.Points = append(s.Points, Point{T: t, V: v}) }

// Values extracts the V column.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.V
	}
	return out
}

// Downsample reduces the series to at most n points by striding, preserving
// the last point — enough fidelity for terminal plots of long traces.
func (s *Series) Downsample(n int) []Point {
	if n <= 0 || len(s.Points) <= n {
		return append([]Point(nil), s.Points...)
	}
	stride := float64(len(s.Points)) / float64(n)
	out := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, s.Points[int(float64(i)*stride)])
	}
	out[len(out)-1] = s.Points[len(s.Points)-1]
	return out
}
