package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Count != 4 || s.Sum != 10 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 4)
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", s.StdDev, want)
	}
	if s.Spread() != 4 {
		t.Fatalf("spread = %v, want 4", s.Spread())
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Spread() != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSpreadZeroMin(t *testing.T) {
	s := Summarize([]float64{0, 5})
	if !math.IsInf(s.Spread(), 1) {
		t.Fatalf("spread with zero min = %v, want +Inf", s.Spread())
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if p := Percentile(xs, 50); p != 3 {
		t.Fatalf("p50 = %v, want 3", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Fatalf("p100 = %v, want 5", p)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 = %v, want 1", p)
	}
}

func TestPercentilePanics(t *testing.T) {
	for i, fn := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestJainIndex(t *testing.T) {
	if j := JainIndex([]float64{10, 10, 10, 10}); math.Abs(j-1) > 1e-12 {
		t.Fatalf("balanced Jain = %v, want 1", j)
	}
	if j := JainIndex([]float64{40, 0, 0, 0}); math.Abs(j-0.25) > 1e-12 {
		t.Fatalf("concentrated Jain = %v, want 0.25", j)
	}
	if j := JainIndex([]float64{0, 0}); j != 1 {
		t.Fatalf("all-zero Jain = %v, want 1", j)
	}
	if j := JainIndex(nil); j != 0 {
		t.Fatalf("empty Jain = %v, want 0", j)
	}
}

func TestPropertyJainInRange(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(30))
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		j := JainIndex(xs)
		lo := 1/float64(len(xs)) - 1e-9
		return j >= lo && j <= 1+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramAndCDF(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0.5, 1, 3, 5, 7, 9, 11, -2} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d, want 8", h.Total())
	}
	// -2 clamps to bin 0, 11 clamps to bin 4.
	if h.Bins[0] != 3 { // 0.5, 1, -2
		t.Fatalf("bin0 = %d, want 3", h.Bins[0])
	}
	cdf := h.CDF()
	if cdf[len(cdf)-1] != 1.0 {
		t.Fatalf("cdf final = %v, want 1", cdf[len(cdf)-1])
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1] {
			t.Fatal("cdf not monotone")
		}
	}
}

func TestHistogramNonFinite(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	// NaN must be dropped, not converted to an implementation-defined bin.
	h.Add(math.NaN())
	if h.Total() != 0 {
		t.Fatalf("NaN was recorded: bins %v", h.Bins)
	}
	// ±Inf clamp to the edge bins like any other out-of-range value.
	h.Add(math.Inf(-1))
	h.Add(math.Inf(1))
	if h.Bins[0] != 1 || h.Bins[len(h.Bins)-1] != 1 {
		t.Fatalf("Inf not clamped to edges: bins %v", h.Bins)
	}
	if h.Total() != 2 {
		t.Fatalf("total = %d, want 2", h.Total())
	}
	// The exact upper edge lands in the last bin (clamped, half-open range).
	h.Add(10)
	if h.Bins[len(h.Bins)-1] != 2 {
		t.Fatalf("upper edge not clamped into last bin: bins %v", h.Bins)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad range")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestSeriesDownsample(t *testing.T) {
	var s Series
	for i := 0; i < 100; i++ {
		s.Add(float64(i), float64(i)*2)
	}
	ds := s.Downsample(10)
	if len(ds) != 10 {
		t.Fatalf("downsampled to %d, want 10", len(ds))
	}
	if ds[len(ds)-1] != s.Points[99] {
		t.Fatal("last point not preserved")
	}
	if got := s.Downsample(1000); len(got) != 100 {
		t.Fatalf("oversized downsample = %d points, want 100", len(got))
	}
	if vals := s.Values(); len(vals) != 100 || vals[3] != 6 {
		t.Fatal("Values extraction wrong")
	}
}

func TestPropertySummaryBounds(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(50))
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		s := Summarize(xs)
		if s.Min > s.Mean || s.Mean > s.Max {
			return false
		}
		if s.StdDev < 0 || s.StdDev > s.Max-s.Min+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBootstrapCI(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 10 + rng.NormFloat64()
	}
	lo, hi := BootstrapCI(xs, 2000, 0.95, 42)
	if lo >= hi {
		t.Fatalf("degenerate interval [%v,%v]", lo, hi)
	}
	// The true mean 10 should fall inside a 95% interval for this sample.
	if lo > 10.5 || hi < 9.5 {
		t.Fatalf("interval [%v,%v] implausibly far from 10", lo, hi)
	}
	// Wider confidence -> wider interval.
	lo99, hi99 := BootstrapCI(xs, 2000, 0.99, 42)
	if hi99-lo99 <= hi-lo {
		t.Fatalf("99%% interval [%v,%v] not wider than 95%% [%v,%v]", lo99, hi99, lo, hi)
	}
	// Deterministic given the seed.
	lo2, hi2 := BootstrapCI(xs, 2000, 0.95, 42)
	if lo2 != lo || hi2 != hi {
		t.Fatal("bootstrap not deterministic")
	}
}

func TestBootstrapCIPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { BootstrapCI(nil, 100, 0.95, 1) },
		func() { BootstrapCI([]float64{1}, 100, 0, 1) },
		func() { BootstrapCI([]float64{1}, 100, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
