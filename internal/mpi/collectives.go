package mpi

import "fmt"

// This file implements the collective operations the paper's applications
// lean on (§II-B: "processes can simultaneously issue a large number of
// data read requests... due to the synchronization requirement"): broadcast
// of the meta-file, scatter of assignments, gather/reduce of results. All
// collectives are built from the point-to-point primitives with binomial
// trees, so their cost is carried by the same simulated NICs as everything
// else. Every rank must call the collective with matching arguments, as in
// MPI.

// Collective message tags live in reserved ranges far above user tags
// (each range leaves room for a per-rank or per-round offset).
const (
	tagBcast   = 1 << 20
	tagScatter = 2 << 20
	tagGather  = 3 << 20
	tagReduce  = 4 << 20
)

// Bcast distributes value (with a payload of sizeMB) from root to every
// rank along a binomial tree; it returns the value on all ranks.
func (r *Rank) Bcast(root int, sizeMB, value float64) float64 {
	size := r.Size()
	if root < 0 || root >= size {
		panic(fmt.Sprintf("mpi: bcast root %d out of range", root))
	}
	// Rotate ranks so the root is virtual rank 0.
	vrank := (r.id - root + size) % size
	got := value
	if vrank != 0 {
		// Receive from the parent in the binomial tree.
		got = r.Recv(AnySource, tagBcast)
	}
	// Forward to children: at step k every rank v < 2^k sends to v + 2^k
	// (the standard binomial schedule: 0→1; 0→2,1→3; 0→4,1→5,2→6,3→7; ...).
	for bit := 1; bit < size; bit <<= 1 {
		if vrank < bit {
			child := vrank + bit
			if child < size {
				r.Send((child+root)%size, tagBcast, sizeMB, got)
			}
		}
	}
	return got
}

// Gather collects one value from every rank at root (payload sizeMB per
// contribution). The returned slice, indexed by rank, is only meaningful at
// root; other ranks receive nil.
func (r *Rank) Gather(root int, sizeMB, value float64) []float64 {
	size := r.Size()
	if root < 0 || root >= size {
		panic(fmt.Sprintf("mpi: gather root %d out of range", root))
	}
	if r.id != root {
		r.Send(root, tagGather+r.id, sizeMB, value)
		return nil
	}
	out := make([]float64, size)
	out[root] = value
	for rank := 0; rank < size; rank++ {
		if rank == root {
			continue
		}
		out[rank] = r.Recv(rank, tagGather+rank)
	}
	return out
}

// Scatter sends values[i] (payload sizeMB each) from root to rank i and
// returns this rank's element. values is only read at root and must have
// one element per rank there.
func (r *Rank) Scatter(root int, sizeMB float64, values []float64) float64 {
	size := r.Size()
	if root < 0 || root >= size {
		panic(fmt.Sprintf("mpi: scatter root %d out of range", root))
	}
	if r.id == root {
		if len(values) != size {
			panic(fmt.Sprintf("mpi: scatter needs %d values, got %d", size, len(values)))
		}
		for rank := 0; rank < size; rank++ {
			if rank == root {
				continue
			}
			r.Send(rank, tagScatter+rank, sizeMB, values[rank])
		}
		return values[root]
	}
	return r.Recv(root, tagScatter+r.id)
}

// ReduceOp combines two values in a Reduce.
type ReduceOp func(a, b float64) float64

// Sum, Max and Min are the common reduction operators.
var (
	Sum ReduceOp = func(a, b float64) float64 { return a + b }
	Max ReduceOp = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	Min ReduceOp = func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
)

// Allreduce combines every rank's value with op and delivers the result to
// all ranks (Reduce to rank 0 followed by a broadcast, the classic
// implementation).
func (r *Rank) Allreduce(sizeMB, value float64, op ReduceOp) float64 {
	total := r.Reduce(0, sizeMB, value, op)
	if r.id != 0 {
		total = 0 // only rank 0's reduction result is authoritative
	}
	return r.Bcast(0, sizeMB, total)
}

// Allgather collects one value from every rank and delivers the full
// vector to all ranks (Gather at rank 0, then a broadcast per slot —
// simple, and the per-slot payloads ride the same simulated NICs).
func (r *Rank) Allgather(sizeMB, value float64) []float64 {
	gathered := r.Gather(0, sizeMB, value)
	size := r.Size()
	out := make([]float64, size)
	for rank := 0; rank < size; rank++ {
		var v float64
		if r.id == 0 {
			v = gathered[rank]
		}
		out[rank] = r.Bcast(0, sizeMB, v)
	}
	return out
}

// Reduce combines every rank's value with op at root (payload sizeMB per
// message) and returns the result at root (other ranks receive their
// partial, which callers should ignore). A binomial reduction tree halves
// the active ranks each round.
func (r *Rank) Reduce(root int, sizeMB, value float64, op ReduceOp) float64 {
	size := r.Size()
	if root < 0 || root >= size {
		panic(fmt.Sprintf("mpi: reduce root %d out of range", root))
	}
	vrank := (r.id - root + size) % size
	acc := value
	for bit := 1; bit < size; bit <<= 1 {
		if vrank&bit != 0 {
			// Send the partial to the partner below and exit the tree.
			partner := vrank - bit
			r.Send((partner+root)%size, tagReduce+int(bit), sizeMB, acc)
			return acc
		}
		partner := vrank + bit
		if partner < size {
			acc = op(acc, r.Recv((partner+root)%size, tagReduce+int(bit)))
		}
	}
	return acc
}
