package mpi

import (
	"math"
	"sync"
	"testing"
)

func TestBcastDeliversToAll(t *testing.T) {
	for _, size := range []int{1, 2, 3, 5, 8, 13} {
		w, _ := world(t, size, 21)
		var mu sync.Mutex
		got := map[int]float64{}
		_, err := w.Run(func(r *Rank) {
			v := -1.0
			if r.ID() == 0 {
				v = 42
			}
			out := r.Bcast(0, 0.001, v)
			mu.Lock()
			got[r.ID()] = out
			mu.Unlock()
		})
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		for rank := 0; rank < size; rank++ {
			if got[rank] != 42 {
				t.Fatalf("size %d: rank %d got %v", size, rank, got[rank])
			}
		}
	}
}

func TestBcastNonZeroRoot(t *testing.T) {
	w, _ := world(t, 6, 22)
	var mu sync.Mutex
	got := map[int]float64{}
	_, err := w.Run(func(r *Rank) {
		v := 0.0
		if r.ID() == 3 {
			v = 7
		}
		out := r.Bcast(3, 0.001, v)
		mu.Lock()
		got[r.ID()] = out
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank, v := range got {
		if v != 7 {
			t.Fatalf("rank %d got %v", rank, v)
		}
	}
}

func TestBcastBandwidthCost(t *testing.T) {
	// Broadcasting 117 MB over 117 MB/s NICs with a binomial tree over 8
	// ranks takes ~3 rounds of ~1 s each (leaf paths traverse 3 hops).
	w, _ := world(t, 8, 23)
	end, err := w.Run(func(r *Rank) {
		r.Bcast(0, 117, float64(r.ID()))
	})
	if err != nil {
		t.Fatal(err)
	}
	if end < 2.5 || end > 4.5 {
		t.Fatalf("binomial bcast of 117 MB over 8 ranks took %v, want ~3s", end)
	}
}

func TestGatherCollectsAll(t *testing.T) {
	w, _ := world(t, 7, 24)
	var got []float64
	_, err := w.Run(func(r *Rank) {
		out := r.Gather(0, 0.001, float64(r.ID()*r.ID()))
		if r.ID() == 0 {
			got = out
		} else if out != nil {
			t.Error("non-root gather result must be nil")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("gathered %d values", len(got))
	}
	for rank, v := range got {
		if v != float64(rank*rank) {
			t.Fatalf("slot %d = %v", rank, v)
		}
	}
}

func TestScatterDistributes(t *testing.T) {
	w, _ := world(t, 5, 25)
	var mu sync.Mutex
	got := map[int]float64{}
	_, err := w.Run(func(r *Rank) {
		var values []float64
		if r.ID() == 2 {
			values = []float64{10, 11, 12, 13, 14}
		}
		v := r.Scatter(2, 0.001, values)
		mu.Lock()
		got[r.ID()] = v
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 5; rank++ {
		if got[rank] != float64(10+rank) {
			t.Fatalf("rank %d got %v", rank, got[rank])
		}
	}
}

func TestReduceOperators(t *testing.T) {
	cases := []struct {
		op   ReduceOp
		want float64
	}{
		{Sum, 0 + 1 + 2 + 3 + 4 + 5},
		{Max, 5},
		{Min, 0},
	}
	for i, tc := range cases {
		w, _ := world(t, 6, int64(26+i))
		var got float64
		_, err := w.Run(func(r *Rank) {
			out := r.Reduce(0, 0.001, float64(r.ID()), tc.op)
			if r.ID() == 0 {
				got = out
			}
		})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("case %d: reduce = %v, want %v", i, got, tc.want)
		}
	}
}

func TestReduceNonZeroRoot(t *testing.T) {
	w, _ := world(t, 5, 29)
	var got float64
	_, err := w.Run(func(r *Rank) {
		out := r.Reduce(4, 0.001, 1, Sum)
		if r.ID() == 4 {
			got = out
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("sum = %v, want 5", got)
	}
}

func TestCollectivesCompose(t *testing.T) {
	// The §II-B SPMD skeleton: root broadcasts the file count, every rank
	// computes its interval, reduces the total back, then barriers.
	w, fs := world(t, 8, 30)
	f, err := fs.Create("/meta", 64*16)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	_, err = w.Run(func(r *Rank) {
		n := r.Bcast(0, 0.001, float64(len(f.Chunks)))
		lo := r.ID() * int(n) / r.Size()
		hi := (r.ID() + 1) * int(n) / r.Size()
		for i := lo; i < hi; i++ {
			r.ReadChunk(f.Chunks[i])
		}
		sum := r.Reduce(0, 0.001, float64(hi-lo), Sum)
		if r.ID() == 0 {
			total = sum
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 16 {
		t.Fatalf("reduced task count %v, want 16", total)
	}
	if len(w.Reads()) != 16 {
		t.Fatalf("reads = %d", len(w.Reads()))
	}
}

func TestCollectiveValidation(t *testing.T) {
	w, _ := world(t, 2, 31)
	_, err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			defer func() { recover() }()
			r.Bcast(9, 0, 0) // bad root panics
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	w2, _ := world(t, 2, 32)
	_, err = w2.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Scatter(0, 0.001, []float64{1}) // wrong length panics
		}
	})
	if err == nil {
		t.Fatal("scatter with wrong value count must surface an error")
	}
}

func TestAllreduceDeliversEverywhere(t *testing.T) {
	w, _ := world(t, 6, 33)
	var mu sync.Mutex
	got := map[int]float64{}
	_, err := w.Run(func(r *Rank) {
		v := r.Allreduce(0.001, float64(r.ID()+1), Sum)
		mu.Lock()
		got[r.ID()] = v
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 6; rank++ {
		if got[rank] != 21 { // 1+2+...+6
			t.Fatalf("rank %d allreduce = %v, want 21", rank, got[rank])
		}
	}
}

func TestAllgatherDeliversVector(t *testing.T) {
	w, _ := world(t, 4, 34)
	var mu sync.Mutex
	got := map[int][]float64{}
	_, err := w.Run(func(r *Rank) {
		v := r.Allgather(0.001, float64(r.ID()*10))
		mu.Lock()
		got[r.ID()] = v
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 4; rank++ {
		v := got[rank]
		if len(v) != 4 {
			t.Fatalf("rank %d got %d values", rank, len(v))
		}
		for i, x := range v {
			if x != float64(i*10) {
				t.Fatalf("rank %d slot %d = %v", rank, i, x)
			}
		}
	}
}
