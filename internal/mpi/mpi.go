// Package mpi is a small MPI-flavored runtime over the simulated cluster:
// each rank is a goroutine, and blocking operations — Send, Recv, Barrier,
// chunk reads, compute — advance a shared virtual clock instead of wall
// time. It lets the repository express the paper's applications the way
// they are actually written (MPICH programs with barriers and master/worker
// message loops) while every byte still moves through the same contended
// disk and NIC model as the execution engine.
//
// The scheduler is conservative: virtual time only advances when every rank
// is blocked, so results are deterministic regardless of goroutine
// scheduling (pending operations are matched in rank order once the world
// is quiescent).
package mpi

import (
	"fmt"
	"sort"
	"sync"

	"opass/internal/cluster"
	"opass/internal/dfs"
	"opass/internal/simnet"
)

// AnySource matches a Recv against the lowest-ranked pending sender.
const AnySource = -1

// World owns the ranks and the virtual clock.
type World struct {
	topo     *cluster.Topology
	fs       *dfs.FileSystem
	rankNode []int

	mu       sync.Mutex
	quiesced *sync.Cond
	running  int
	alive    int

	seq      int
	sends    []*sendReq
	recvs    []*recvReq
	barrier  []*waiter
	wakeups  map[simnet.FlowID][]*waiter
	readRecs []ReadRecord
	err      error
}

// ReadRecord logs one chunk read issued through a rank.
type ReadRecord struct {
	Rank    int
	Chunk   dfs.ChunkID
	SrcNode int
	Local   bool
	SizeMB  float64
	Start   float64
	End     float64
}

type waiter struct {
	rank    int
	seq     int
	payload float64      // delivered at wake-up (message value, size, or 0)
	ch      chan float64 // wake-up channel; closed on world failure
}

type sendReq struct {
	*waiter
	dst, tag int
	sizeMB   float64
	value    float64
}

type recvReq struct {
	*waiter
	src, tag int
}

// NewWorld builds a world with one rank per entry of rankNode (rank i runs
// on node rankNode[i]).
func NewWorld(topo *cluster.Topology, fs *dfs.FileSystem, rankNode []int) *World {
	if topo == nil || len(rankNode) == 0 {
		panic("mpi: world requires a topology and at least one rank")
	}
	for _, n := range rankNode {
		if n < 0 || n >= topo.NumNodes() {
			panic(fmt.Sprintf("mpi: rank on invalid node %d", n))
		}
	}
	w := &World{
		topo:     topo,
		fs:       fs,
		rankNode: append([]int(nil), rankNode...),
		wakeups:  map[simnet.FlowID][]*waiter{},
	}
	w.quiesced = sync.NewCond(&w.mu)
	return w
}

// Size reports the number of ranks.
func (w *World) Size() int { return len(w.rankNode) }

// Reads returns the chunk reads recorded during Run, in completion order.
func (w *World) Reads() []ReadRecord {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]ReadRecord(nil), w.readRecs...)
}

// Rank is the handle a program uses inside its rank goroutine.
type Rank struct {
	w  *World
	id int
}

// ID reports the rank number.
func (r *Rank) ID() int { return r.id }

// Node reports the cluster node the rank runs on.
func (r *Rank) Node() int { return r.w.rankNode[r.id] }

// Size reports the world size.
func (r *Rank) Size() int { return r.w.Size() }

// Now reports the current virtual time. (Safe to call while running.)
func (r *Rank) Now() float64 {
	r.w.mu.Lock()
	defer r.w.mu.Unlock()
	return r.w.topo.Net().Now()
}

// Run executes program once per rank and drives the virtual clock until
// every rank returns. It returns the final virtual time.
func (w *World) Run(program func(r *Rank)) (float64, error) {
	net := w.topo.Net()
	if net.Active() != 0 {
		return 0, fmt.Errorf("mpi: network busy at world start")
	}
	net.OnComplete(w.onComplete)
	defer net.OnComplete(nil)

	w.mu.Lock()
	w.alive = len(w.rankNode)
	w.running = len(w.rankNode)
	w.mu.Unlock()

	var panics sync.Map
	var wg sync.WaitGroup
	for i := range w.rankNode {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics.Store(id, p)
				}
				w.mu.Lock()
				w.alive--
				w.running--
				w.quiesced.Broadcast()
				w.mu.Unlock()
			}()
			program(&Rank{w: w, id: id})
		}(i)
	}

	// Driver: whenever the world quiesces, first match communications, then
	// advance the clock.
	w.mu.Lock()
	for w.alive > 0 {
		for w.running > 0 {
			w.quiesced.Wait()
		}
		if w.alive == 0 {
			break
		}
		if w.matchLocked() {
			continue // matching woke ranks or started flows
		}
		if net.Active() > 0 {
			// Advance to the next event; completions wake ranks via
			// onComplete (which takes the lock itself), so release it.
			w.mu.Unlock()
			net.Step()
			w.mu.Lock()
			continue
		}
		w.err = fmt.Errorf("mpi: deadlock — %d ranks blocked with no pending events", w.alive)
		// Unblock everyone (their blocking calls panic) and wait for the
		// rank goroutines to unwind.
		w.failAllLocked()
		for w.alive > 0 {
			w.quiesced.Wait()
		}
		break
	}
	err := w.err
	w.mu.Unlock()
	wg.Wait()
	if p, ok := firstPanic(&panics, len(w.rankNode)); ok {
		if perr, isErr := p.(error); isErr && err == nil {
			err = perr
		} else if err == nil {
			err = fmt.Errorf("mpi: rank panic: %v", p)
		}
	}
	return net.Now(), err
}

func firstPanic(m *sync.Map, ranks int) (any, bool) {
	for i := 0; i < ranks; i++ {
		if p, ok := m.Load(i); ok {
			return p, true
		}
	}
	return nil, false
}

// failAllLocked wakes every parked waiter with a deadlock signal; their
// blocking calls panic, unwinding the rank goroutines.
func (w *World) failAllLocked() {
	for _, s := range w.sends {
		close(s.ch)
	}
	w.sends = nil
	for _, r := range w.recvs {
		close(r.ch)
	}
	w.recvs = nil
	for _, b := range w.barrier {
		close(b.ch)
	}
	w.barrier = nil
	for _, ws := range w.wakeups {
		for _, wt := range ws {
			close(wt.ch)
		}
	}
	w.wakeups = map[simnet.FlowID][]*waiter{}
}

// matchLocked pairs pending sends/recvs and releases full barriers. It
// reports whether it made progress.
func (w *World) matchLocked() bool {
	progress := false
	// Barrier: all live ranks present?
	if len(w.barrier) > 0 && len(w.barrier) == w.alive {
		for _, b := range w.barrier {
			b.ch <- 0
		}
		w.barrier = nil
		w.running += w.alive
		return true
	}
	// Deterministic matching order.
	sort.Slice(w.recvs, func(i, j int) bool { return w.recvs[i].seq < w.recvs[j].seq })
	sort.Slice(w.sends, func(i, j int) bool { return w.sends[i].seq < w.sends[j].seq })
	for ri := 0; ri < len(w.recvs); {
		rv := w.recvs[ri]
		matched := -1
		for si, sd := range w.sends {
			if sd.dst != rv.rank {
				continue
			}
			if rv.src != AnySource && rv.src != sd.rank {
				continue
			}
			if rv.tag != sd.tag {
				continue
			}
			matched = si
			break
		}
		if matched < 0 {
			ri++
			continue
		}
		sd := w.sends[matched]
		w.sends = append(w.sends[:matched], w.sends[matched+1:]...)
		w.recvs = append(w.recvs[:ri], w.recvs[ri+1:]...)
		w.startMessageLocked(sd, rv)
		progress = true
	}
	return progress
}

// startMessageLocked launches the matched transfer as a flow; both the
// sender and receiver wake when it completes.
func (w *World) startMessageLocked(sd *sendReq, rv *recvReq) {
	net := w.topo.Net()
	srcNode := w.rankNode[sd.rank]
	dstNode := w.rankNode[rv.rank]
	var id simnet.FlowID
	if sd.sizeMB <= 0 || srcNode == dstNode {
		// Control message or same-node transfer: latency only.
		id = net.Start(nil, 0, 1e-6, fmt.Sprintf("msg %d->%d", sd.rank, rv.rank))
	} else {
		path := []simnet.ResourceID{} // NIC-only: tx at source, rx at dest
		path = append(path, w.topo.RemoteReadPath(srcNode, dstNode)[1:]...)
		id = net.Start(path, sd.sizeMB, 1e-4, fmt.Sprintf("msg %d->%d", sd.rank, rv.rank))
	}
	sd.waiter.payload = sd.sizeMB
	rv.waiter.payload = sd.value
	w.wakeups[id] = append(w.wakeups[id], sd.waiter, rv.waiter)
}

// onComplete wakes the waiters parked on a finished flow.
func (w *World) onComplete(_ float64, f *simnet.Flow) {
	w.mu.Lock()
	defer w.mu.Unlock()
	ws := w.wakeups[f.ID]
	delete(w.wakeups, f.ID)
	for _, wt := range ws {
		w.running++
		wt.ch <- wt.payload
	}
}

// park blocks the calling rank until woken, returning the payload. It
// panics if the world declared a deadlock (channel closed).
func (w *World) park(wt *waiter) float64 {
	w.mu.Lock()
	w.running--
	if w.running == 0 {
		w.quiesced.Broadcast()
	}
	w.mu.Unlock()
	v, ok := <-wt.ch
	if !ok {
		panic(fmt.Errorf("mpi: rank %d aborted: %v", wt.rank, "world deadlock"))
	}
	return v
}

func (w *World) newWaiter(rank int) *waiter {
	w.seq++
	return &waiter{rank: rank, seq: w.seq, ch: make(chan float64, 1)}
}

// Send transmits sizeMB of data to rank dst with a tag, blocking until the
// transfer completes (rendezvous semantics). value is an opaque scalar
// delivered to the receiver alongside the data — the envelope that a real
// MPI program would pack into the buffer (task IDs, rank numbers, ...).
func (r *Rank) Send(dst, tag int, sizeMB, value float64) {
	if dst < 0 || dst >= r.w.Size() || dst == r.id {
		panic(fmt.Sprintf("mpi: rank %d sending to invalid rank %d", r.id, dst))
	}
	w := r.w
	w.mu.Lock()
	wt := w.newWaiter(r.id)
	w.sends = append(w.sends, &sendReq{waiter: wt, dst: dst, tag: tag, sizeMB: sizeMB, value: value})
	w.mu.Unlock()
	w.park(wt)
}

// Recv blocks until a matching message (from src, or AnySource) arrives and
// returns the sender's value scalar.
func (r *Rank) Recv(src, tag int) float64 {
	w := r.w
	w.mu.Lock()
	wt := w.newWaiter(r.id)
	w.recvs = append(w.recvs, &recvReq{waiter: wt, src: src, tag: tag})
	w.mu.Unlock()
	return w.park(wt)
}

// Barrier blocks until every live rank has entered the barrier.
func (r *Rank) Barrier() {
	w := r.w
	w.mu.Lock()
	wt := w.newWaiter(r.id)
	w.barrier = append(w.barrier, wt)
	w.mu.Unlock()
	w.park(wt)
}

// Compute burns the given seconds of virtual time.
func (r *Rank) Compute(seconds float64) {
	if seconds <= 0 {
		return
	}
	w := r.w
	w.mu.Lock()
	wt := w.newWaiter(r.id)
	id := w.topo.Net().Start(nil, 0, seconds, fmt.Sprintf("rank%d/compute", r.id))
	w.wakeups[id] = append(w.wakeups[id], wt)
	w.mu.Unlock()
	w.park(wt)
}

// ReadChunk reads a chunk from the file system with the HDFS replica
// policy, blocking for the simulated I/O time and recording the read.
func (r *Rank) ReadChunk(id dfs.ChunkID) {
	w := r.w
	if w.fs == nil {
		panic("mpi: world has no file system")
	}
	c := w.fs.Chunk(id)
	w.mu.Lock()
	srcNode, local := w.fs.PickReplica(id, r.Node())
	path := w.topo.ReadPath(srcNode, r.Node())
	wt := w.newWaiter(r.id)
	start := w.topo.Net().Now()
	fid := w.topo.Net().Start(path, c.SizeMB, w.topo.ReadLatency(srcNode), fmt.Sprintf("rank%d/chunk%d", r.id, id))
	w.wakeups[fid] = append(w.wakeups[fid], wt)
	rec := ReadRecord{Rank: r.id, Chunk: id, SrcNode: srcNode, Local: local, SizeMB: c.SizeMB, Start: start}
	w.mu.Unlock()
	w.park(wt)
	rec.End = r.Now()
	w.mu.Lock()
	w.readRecs = append(w.readRecs, rec)
	w.mu.Unlock()
}
