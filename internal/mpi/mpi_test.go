package mpi

import (
	"math"
	"strings"
	"sync"
	"testing"

	"opass/internal/cluster"
	"opass/internal/dfs"
)

func world(t testing.TB, nodes int, seed int64) (*World, *dfs.FileSystem) {
	t.Helper()
	topo := cluster.New(nodes, cluster.Marmot())
	fs := dfs.New(topo, dfs.Config{Seed: seed})
	ranks := make([]int, nodes)
	for i := range ranks {
		ranks[i] = i
	}
	return NewWorld(topo, fs, ranks), fs
}

func TestComputeAdvancesVirtualTime(t *testing.T) {
	w, _ := world(t, 4, 1)
	end, err := w.Run(func(r *Rank) {
		r.Compute(2.5)
	})
	if err != nil {
		t.Fatal(err)
	}
	// All ranks compute in parallel: world time is 2.5s, not 10s.
	if math.Abs(end-2.5) > 1e-6 {
		t.Fatalf("end = %v, want 2.5", end)
	}
}

func TestSendRecvTransfersData(t *testing.T) {
	w, _ := world(t, 2, 2)
	var got float64
	end, err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 7, 117, 42) // 117 MB over a 117 MB/s NIC: ~1s
		} else {
			got = r.Recv(0, 7)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("received value %v, want 42", got)
	}
	if end < 0.9 || end > 1.2 {
		t.Fatalf("transfer time %v, want ~1s", end)
	}
}

func TestRecvAnySource(t *testing.T) {
	w, _ := world(t, 3, 3)
	var mu sync.Mutex
	received := 0
	_, err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			for i := 0; i < 2; i++ {
				r.Recv(AnySource, 1)
				mu.Lock()
				received++
				mu.Unlock()
			}
		} else {
			r.Send(0, 1, 0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if received != 2 {
		t.Fatalf("received %d messages, want 2", received)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	w, _ := world(t, 4, 4)
	var mu sync.Mutex
	var after []float64
	_, err := w.Run(func(r *Rank) {
		r.Compute(float64(r.ID())) // ranks finish at 0,1,2,3 s
		r.Barrier()
		mu.Lock()
		after = append(after, r.Now())
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Everyone leaves the barrier at t=3 (the slowest rank).
	for _, ts := range after {
		if math.Abs(ts-3.0) > 1e-6 {
			t.Fatalf("rank left barrier at %v, want 3.0", ts)
		}
	}
}

func TestReadChunkRecordsAndTimes(t *testing.T) {
	w, fs := world(t, 4, 5)
	f, err := fs.Create("/data", 64)
	if err != nil {
		t.Fatal(err)
	}
	chunk := f.Chunks[0]
	reader := fs.Chunk(chunk).Replicas[0] // co-located rank
	end, err := w.Run(func(r *Rank) {
		if r.ID() == reader {
			r.ReadChunk(chunk)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(end-0.868) > 0.01 {
		t.Fatalf("local 64 MB read took %v, want ~0.87", end)
	}
	recs := w.Reads()
	if len(recs) != 1 || !recs[0].Local || recs[0].Rank != reader {
		t.Fatalf("read records: %+v", recs)
	}
}

func TestDeadlockDetected(t *testing.T) {
	w, _ := world(t, 2, 6)
	_, err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Recv(1, 9) // never sent
		}
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestMasterWorkerProtocol(t *testing.T) {
	// The proper protocol: master replies on a single tag; a negative task
	// ID means stop. Exactly the §IV-D dispatch loop over real messages.
	w, fs := world(t, 5, 8)
	f, err := fs.Create("/db", 64*12)
	if err != nil {
		t.Fatal(err)
	}
	const (
		tagRequest = 1
		tagReply   = 2
	)
	var mu sync.Mutex
	executed := map[int]bool{}
	_, err = w.Run(func(r *Rank) {
		if r.ID() == 0 {
			next, stopped := 0, 0
			for stopped < r.Size()-1 {
				src := int(r.Recv(AnySource, tagRequest))
				if next < len(f.Chunks) {
					r.Send(src, tagReply, 0.001, float64(next))
					next++
				} else {
					r.Send(src, tagReply, 0.001, -1)
					stopped++
				}
			}
			return
		}
		for {
			r.Send(0, tagRequest, 0.001, float64(r.ID()))
			task := r.Recv(0, tagReply)
			if task < 0 {
				return
			}
			r.ReadChunk(f.Chunks[int(task)])
			mu.Lock()
			executed[int(task)] = true
			mu.Unlock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(executed) != 12 {
		t.Fatalf("executed %d tasks, want 12", len(executed))
	}
	if len(w.Reads()) != 12 {
		t.Fatalf("recorded %d reads, want 12", len(w.Reads()))
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() float64 {
		w, fs := world(t, 8, 9)
		f, _ := fs.Create("/d", 64*16)
		end, err := w.Run(func(r *Rank) {
			for i := r.ID(); i < len(f.Chunks); i += r.Size() {
				r.ReadChunk(f.Chunks[i])
			}
			r.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("runs diverged: %v vs %v", a, b)
	}
}

func TestInvalidConstruction(t *testing.T) {
	topo := cluster.New(2, cluster.Marmot())
	for i, fn := range []func(){
		func() { NewWorld(nil, nil, []int{0}) },
		func() { NewWorld(topo, nil, nil) },
		func() { NewWorld(topo, nil, []int{5}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestSendToSelfPanics(t *testing.T) {
	w, _ := world(t, 2, 10)
	_, err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(0, 1, 1, 0)
		}
	})
	if err == nil {
		t.Fatal("send-to-self must surface an error")
	}
}
