// Package paraview models the ParaView workflow of the paper's §V-B
// experiment: a VTK MultiBlock dataset whose meta-file indexes a series of
// data blocks, parallel data-server processes that each read their assigned
// blocks per rendering step (vtkXMLCompositeDataReader / ReadXMLData), and
// an off-screen rendering pipeline driven in pvbatch style. Opass is hooked
// exactly where the paper hooks it — at the point the reader assigns data
// pieces to data servers after processing the meta-file.
//
// The experiment's measured quantity is the time of each call into
// vtkFileSeriesReader: one block read (56 MB in the paper) plus XML
// parsing. Rendering adds a fixed per-step cost after the barrier.
package paraview

import (
	"fmt"

	"opass/internal/cluster"
	"opass/internal/core"
	"opass/internal/dfs"
	"opass/internal/engine"
)

// BlockType enumerates the VTK XML dataset flavors a multi-block file may
// contain (§V-B lists these five).
type BlockType int

// The VTK data set types of a multi-block collection.
const (
	PolyData BlockType = iota
	ImageData
	RectilinearGrid
	UnstructuredGrid
	StructuredGrid
	numBlockTypes
)

// String implements fmt.Stringer.
func (b BlockType) String() string {
	switch b {
	case PolyData:
		return "PolyData"
	case ImageData:
		return "ImageData"
	case RectilinearGrid:
		return "RectilinearGrid"
	case UnstructuredGrid:
		return "UnstructuredGrid"
	case StructuredGrid:
		return "StructuredGrid"
	default:
		return fmt.Sprintf("BlockType(%d)", int(b))
	}
}

// Block is one sub-dataset of a multi-block collection, stored as one
// chunked file in the DFS.
type Block struct {
	Name   string
	Type   BlockType
	SizeMB float64
	Chunk  dfs.ChunkID
}

// MultiBlockDataset is the meta-file: an index over a series of VTK XML
// data files that together represent an assembly of parts.
type MultiBlockDataset struct {
	MetaFile string
	Blocks   []Block
}

// TotalMB is the dataset's aggregate size.
func (d *MultiBlockDataset) TotalMB() float64 {
	var s float64
	for i := range d.Blocks {
		s += d.Blocks[i].SizeMB
	}
	return s
}

// CreateDataset writes numBlocks blocks of blockMB each into the file
// system and returns the meta-file index. Block types rotate through the
// five VTK flavors, mirroring the protein datasets the paper converts to
// multi-block time steps.
func CreateDataset(fs *dfs.FileSystem, meta string, numBlocks int, blockMB float64) (*MultiBlockDataset, error) {
	if numBlocks <= 0 || blockMB <= 0 {
		return nil, fmt.Errorf("paraview: invalid dataset %d blocks x %v MB", numBlocks, blockMB)
	}
	ds := &MultiBlockDataset{MetaFile: meta}
	for i := 0; i < numBlocks; i++ {
		name := fmt.Sprintf("%s/block%04d.vt%c", meta, i, "pirus"[i%int(numBlockTypes)])
		f, err := fs.CreateChunks(name, []float64{blockMB})
		if err != nil {
			return nil, err
		}
		ds.Blocks = append(ds.Blocks, Block{
			Name:   name,
			Type:   BlockType(i % int(numBlockTypes)),
			SizeMB: blockMB,
			Chunk:  f.Chunks[0],
		})
	}
	return ds, nil
}

// PipelineConfig drives a pvbatch-style run.
type PipelineConfig struct {
	// Steps is the number of rendering time steps; BlocksPerStep blocks are
	// consumed per step (64 of 640 in the paper).
	Steps         int
	BlocksPerStep int
	// ParseSeconds is the XML parse cost charged per block inside the
	// vtkFileSeriesReader call; RenderSeconds is the per-step rendering
	// cost after the read barrier (Mesa off-screen rendering).
	ParseSeconds  float64
	RenderSeconds float64
	// Assigner maps blocks to data servers each step. RankStatic reproduces
	// stock ParaView; core.SingleData reproduces Opass-in-ReadXMLData.
	Assigner core.Assigner
}

// StepResult captures one rendering step.
type StepResult struct {
	// CallTimes holds the vtkFileSeriesReader call time for every block
	// read this step (read + parse), in completion order.
	CallTimes []float64
	// ReadMakespan is the step's read phase duration (barrier time).
	ReadMakespan float64
	// LocalFraction is the fraction of bytes read locally this step.
	LocalFraction float64
}

// PipelineResult captures a full run.
type PipelineResult struct {
	Strategy string
	Steps    []StepResult
	// CallTimes concatenates all steps' reader call times — the Figure 12
	// trace.
	CallTimes []float64
	// TotalSeconds is the complete execution time including rendering.
	TotalSeconds float64
	// ServedMB accumulates per-node served bytes across steps.
	ServedMB []float64
}

// RunPipeline executes the pipeline over the dataset on the given cluster,
// reading with one data-server process per node.
func RunPipeline(topo *cluster.Topology, fs *dfs.FileSystem, ds *MultiBlockDataset, cfg PipelineConfig) (*PipelineResult, error) {
	if cfg.Steps <= 0 || cfg.BlocksPerStep <= 0 {
		return nil, fmt.Errorf("paraview: invalid pipeline config %+v", cfg)
	}
	if cfg.BlocksPerStep > len(ds.Blocks) {
		return nil, fmt.Errorf("paraview: step needs %d blocks but dataset has %d", cfg.BlocksPerStep, len(ds.Blocks))
	}
	if cfg.Assigner == nil {
		return nil, fmt.Errorf("paraview: no assigner configured")
	}
	procNode := make([]int, topo.NumNodes())
	for i := range procNode {
		procNode[i] = i
	}
	res := &PipelineResult{
		Strategy: cfg.Assigner.Name(),
		ServedMB: make([]float64, topo.NumNodes()),
	}
	for step := 0; step < cfg.Steps; step++ {
		// ReadXMLData: select this step's blocks from the meta-file (the
		// paper selects 64 of the 640 datasets per rendering).
		lo := step * cfg.BlocksPerStep % len(ds.Blocks)
		blocks := make([]Block, 0, cfg.BlocksPerStep)
		for i := 0; i < cfg.BlocksPerStep; i++ {
			blocks = append(blocks, ds.Blocks[(lo+i)%len(ds.Blocks)])
		}
		prob := &core.Problem{ProcNode: procNode, FS: fs}
		for i, b := range blocks {
			prob.Tasks = append(prob.Tasks, core.Task{
				ID:     i,
				Inputs: []core.Input{{Chunk: b.Chunk, SizeMB: b.SizeMB}},
			})
		}
		assign, err := cfg.Assigner.Assign(prob)
		if err != nil {
			return nil, fmt.Errorf("paraview: step %d: %w", step, err)
		}
		run, err := engine.RunAssignment(engine.Options{
			Topo:     topo,
			FS:       fs,
			Problem:  prob,
			Strategy: cfg.Assigner.Name(),
			ComputeTime: func(int) float64 {
				return cfg.ParseSeconds
			},
		}, assign)
		if err != nil {
			return nil, fmt.Errorf("paraview: step %d: %w", step, err)
		}
		sr := StepResult{
			ReadMakespan:  run.Makespan,
			LocalFraction: run.LocalFraction(),
		}
		for _, rec := range run.Records {
			sr.CallTimes = append(sr.CallTimes, rec.Duration()+cfg.ParseSeconds)
		}
		res.Steps = append(res.Steps, sr)
		res.CallTimes = append(res.CallTimes, sr.CallTimes...)
		for n, mb := range run.ServedMB {
			res.ServedMB[n] += mb
		}
		res.TotalSeconds += run.Makespan + cfg.RenderSeconds
	}
	return res, nil
}

// RepeatedResult aggregates several full pipeline runs, as the paper does
// ("We run the tests 5 times and the average execution time...").
type RepeatedResult struct {
	Runs []*PipelineResult
	// MeanTotalSeconds averages the end-to-end execution times.
	MeanTotalSeconds float64
	// AllCallTimes concatenates every run's reader call times.
	AllCallTimes []float64
}

// RunPipelineRepeated executes the pipeline `repeats` times on fresh
// clusters whose placement seeds differ per run (seed, seed+1, ...), and
// aggregates. buildFS constructs the cluster and dataset for a given seed.
func RunPipelineRepeated(repeats int, baseSeed int64,
	buildFS func(seed int64) (*cluster.Topology, *dfs.FileSystem, *MultiBlockDataset, error),
	cfg PipelineConfig) (*RepeatedResult, error) {
	if repeats <= 0 {
		return nil, fmt.Errorf("paraview: repeats %d must be positive", repeats)
	}
	out := &RepeatedResult{}
	for i := 0; i < repeats; i++ {
		topo, fs, ds, err := buildFS(baseSeed + int64(i))
		if err != nil {
			return nil, err
		}
		res, err := RunPipeline(topo, fs, ds, cfg)
		if err != nil {
			return nil, err
		}
		out.Runs = append(out.Runs, res)
		out.MeanTotalSeconds += res.TotalSeconds
		out.AllCallTimes = append(out.AllCallTimes, res.CallTimes...)
	}
	out.MeanTotalSeconds /= float64(repeats)
	return out, nil
}

// DefaultConfig returns the §V-B calibration: 56 MB reads, XML parse cost
// that puts an uncontended Opass call at about 3 s, and a per-step Mesa
// rendering cost; with 10 steps over 640 blocks on 64 nodes this lands near
// the paper's 98 s (Opass) vs 167 s (stock) totals.
func DefaultConfig(assigner core.Assigner) PipelineConfig {
	return PipelineConfig{
		Steps:         10,
		BlocksPerStep: 64,
		ParseSeconds:  2.3,
		RenderSeconds: 5.5,
		Assigner:      assigner,
	}
}
