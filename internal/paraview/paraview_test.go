package paraview

import (
	"strings"
	"testing"

	"opass/internal/cluster"
	"opass/internal/core"
	"opass/internal/dfs"
	"opass/internal/metrics"
)

func setup(t testing.TB, nodes, blocks int, seed int64) (*cluster.Topology, *dfs.FileSystem, *MultiBlockDataset) {
	t.Helper()
	topo := cluster.New(nodes, cluster.Marmot())
	fs := dfs.New(topo, dfs.Config{Seed: seed})
	ds, err := CreateDataset(fs, "/protein", blocks, 56)
	if err != nil {
		t.Fatal(err)
	}
	return topo, fs, ds
}

func TestCreateDatasetShape(t *testing.T) {
	_, fs, ds := setup(t, 8, 40, 1)
	if len(ds.Blocks) != 40 {
		t.Fatalf("blocks = %d, want 40", len(ds.Blocks))
	}
	if ds.TotalMB() != 40*56 {
		t.Fatalf("total = %v, want %v", ds.TotalMB(), 40*56.0)
	}
	// Types rotate through all five VTK flavors with matching extensions.
	seen := map[BlockType]bool{}
	for i, b := range ds.Blocks {
		seen[b.Type] = true
		if b.Type != BlockType(i%5) {
			t.Fatalf("block %d type %v, want rotation", i, b.Type)
		}
		wantExt := map[BlockType]string{
			PolyData: ".vtp", ImageData: ".vti", RectilinearGrid: ".vtr",
			UnstructuredGrid: ".vtu", StructuredGrid: ".vts",
		}[b.Type]
		if !strings.HasSuffix(b.Name, wantExt) {
			t.Fatalf("block %q extension mismatch for %v", b.Name, b.Type)
		}
		c := fs.Chunk(b.Chunk)
		if c.SizeMB != 56 {
			t.Fatalf("chunk size %v, want 56", c.SizeMB)
		}
	}
	if len(seen) != 5 {
		t.Fatalf("saw %d block types, want 5", len(seen))
	}
}

func TestCreateDatasetValidation(t *testing.T) {
	topo := cluster.New(4, cluster.Marmot())
	fs := dfs.New(topo, dfs.Config{Seed: 2})
	if _, err := CreateDataset(fs, "/x", 0, 56); err == nil {
		t.Fatal("zero blocks must fail")
	}
	if _, err := CreateDataset(fs, "/y", 5, -1); err == nil {
		t.Fatal("negative size must fail")
	}
}

func TestPipelineRunsAllSteps(t *testing.T) {
	topo, fs, ds := setup(t, 8, 40, 3)
	cfg := PipelineConfig{
		Steps:         5,
		BlocksPerStep: 8,
		ParseSeconds:  1.0,
		RenderSeconds: 2.0,
		Assigner:      core.RankStatic{},
	}
	res, err := RunPipeline(topo, fs, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 5 {
		t.Fatalf("steps = %d, want 5", len(res.Steps))
	}
	if len(res.CallTimes) != 40 {
		t.Fatalf("reader calls = %d, want 40", len(res.CallTimes))
	}
	// Every call includes the parse cost.
	for _, c := range res.CallTimes {
		if c < 1.0 {
			t.Fatalf("call time %v below parse cost", c)
		}
	}
	// Total includes per-step render.
	var reads float64
	for _, s := range res.Steps {
		reads += s.ReadMakespan
	}
	if got, want := res.TotalSeconds, reads+5*2.0; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("total = %v, want %v", got, want)
	}
}

func TestPipelineOpassBeatsStock(t *testing.T) {
	// The §V-B claim at reduced scale: Opass lowers both the mean and the
	// standard deviation of reader call times, and the total run time.
	topoA, fsA, dsA := setup(t, 16, 80, 4)
	stock, err := RunPipeline(topoA, fsA, dsA, PipelineConfig{
		Steps: 5, BlocksPerStep: 16, ParseSeconds: 2.3, RenderSeconds: 6.5,
		Assigner: core.RankStatic{},
	})
	if err != nil {
		t.Fatal(err)
	}
	topoB, fsB, dsB := setup(t, 16, 80, 4)
	opass, err := RunPipeline(topoB, fsB, dsB, PipelineConfig{
		Steps: 5, BlocksPerStep: 16, ParseSeconds: 2.3, RenderSeconds: 6.5,
		Assigner: core.SingleData{},
	})
	if err != nil {
		t.Fatal(err)
	}
	ss := metrics.Summarize(stock.CallTimes)
	so := metrics.Summarize(opass.CallTimes)
	if so.Mean >= ss.Mean {
		t.Fatalf("opass mean call %v >= stock %v", so.Mean, ss.Mean)
	}
	if so.StdDev >= ss.StdDev {
		t.Fatalf("opass stddev %v >= stock %v", so.StdDev, ss.StdDev)
	}
	if opass.TotalSeconds >= stock.TotalSeconds {
		t.Fatalf("opass total %v >= stock %v", opass.TotalSeconds, stock.TotalSeconds)
	}
}

func TestPipelineValidation(t *testing.T) {
	topo, fs, ds := setup(t, 4, 8, 5)
	if _, err := RunPipeline(topo, fs, ds, PipelineConfig{Steps: 0, BlocksPerStep: 1, Assigner: core.RankStatic{}}); err == nil {
		t.Fatal("zero steps must fail")
	}
	if _, err := RunPipeline(topo, fs, ds, PipelineConfig{Steps: 1, BlocksPerStep: 99, Assigner: core.RankStatic{}}); err == nil {
		t.Fatal("oversized step must fail")
	}
	if _, err := RunPipeline(topo, fs, ds, PipelineConfig{Steps: 1, BlocksPerStep: 4}); err == nil {
		t.Fatal("missing assigner must fail")
	}
}

func TestDefaultConfigCalibration(t *testing.T) {
	cfg := DefaultConfig(core.SingleData{})
	if cfg.Steps != 10 || cfg.BlocksPerStep != 64 {
		t.Fatalf("default config %+v", cfg)
	}
	if cfg.Assigner.Name() != "opass-flow" {
		t.Fatalf("assigner %s", cfg.Assigner.Name())
	}
}

func TestBlockTypeString(t *testing.T) {
	if PolyData.String() != "PolyData" || BlockType(99).String() != "BlockType(99)" {
		t.Fatal("stringer wrong")
	}
}

func TestPipelineWrapsAroundDataset(t *testing.T) {
	topo, fs, ds := setup(t, 4, 8, 6)
	res, err := RunPipeline(topo, fs, ds, PipelineConfig{
		Steps: 4, BlocksPerStep: 4, ParseSeconds: 0.1, RenderSeconds: 0,
		Assigner: core.RankStatic{},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 steps x 4 blocks over an 8-block dataset: each block read twice.
	if len(res.CallTimes) != 16 {
		t.Fatalf("calls = %d, want 16", len(res.CallTimes))
	}
	var served float64
	for _, s := range res.ServedMB {
		served += s
	}
	if served != 16*56 {
		t.Fatalf("served %v, want %v", served, 16*56.0)
	}
}

func TestRunPipelineRepeated(t *testing.T) {
	build := func(seed int64) (*cluster.Topology, *dfs.FileSystem, *MultiBlockDataset, error) {
		topo := cluster.New(8, cluster.Marmot())
		fs := dfs.New(topo, dfs.Config{Seed: seed})
		ds, err := CreateDataset(fs, "/p", 16, 56)
		return topo, fs, ds, err
	}
	cfg := PipelineConfig{
		Steps: 2, BlocksPerStep: 8, ParseSeconds: 0.5, RenderSeconds: 1,
		Assigner: core.SingleData{},
	}
	rep, err := RunPipelineRepeated(3, 7, build, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 3 {
		t.Fatalf("runs = %d", len(rep.Runs))
	}
	if len(rep.AllCallTimes) != 3*16 {
		t.Fatalf("calls = %d, want 48", len(rep.AllCallTimes))
	}
	var sum float64
	for _, r := range rep.Runs {
		sum += r.TotalSeconds
	}
	if got := sum / 3; got != rep.MeanTotalSeconds {
		t.Fatalf("mean total %v != %v", rep.MeanTotalSeconds, got)
	}
	if _, err := RunPipelineRepeated(0, 1, build, cfg); err == nil {
		t.Fatal("zero repeats must fail")
	}
}
