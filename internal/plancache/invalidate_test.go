package plancache

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStoreOverwriteAccounting pins the refresh branch of storeLocked: when
// an existing key is overwritten, the old entry's bytes are released before
// the new size is charged and its old tags are detached before the new ones
// attach. The branch is unreachable through Do today (a live entry is a
// hit, an expired one is removed first), so this white-box test keeps the
// accounting honest for any future caller.
func TestStoreOverwriteAccounting(t *testing.T) {
	c := New[int](Options{})
	k := keyOf("k")
	c.mu.Lock()
	c.storeLocked(k, 1, 100, []uint64{1, 2})
	c.mu.Unlock()
	if s := c.Stats(); s.Bytes != 100 || s.Entries != 1 {
		t.Fatalf("after insert: %+v, want 100 bytes / 1 entry", s)
	}
	c.mu.Lock()
	c.storeLocked(k, 2, 40, []uint64{2, 3})
	c.mu.Unlock()
	if s := c.Stats(); s.Bytes != 40 || s.Entries != 1 {
		t.Fatalf("after overwrite: %+v, want 40 bytes / 1 entry (old size released)", s)
	}
	// The old tag must no longer reach the entry; the new one must.
	if n := c.InvalidateTags(1); n != 0 {
		t.Fatalf("stale tag 1 invalidated %d entries, want 0", n)
	}
	if n := c.InvalidateTags(3); n != 1 {
		t.Fatalf("tag 3 invalidated %d entries, want 1", n)
	}
	if s := c.Stats(); s.Bytes != 0 || s.Entries != 0 {
		t.Fatalf("after invalidation: %+v, want empty cache", s)
	}
}

// TestInvalidateTags covers the surgical-invalidation primitive: only
// entries carrying a named tag are dropped, multi-tag entries are dropped
// once, and the partial-invalidation stat counts exactly the drops.
func TestInvalidateTags(t *testing.T) {
	c := New[int](Options{})
	var calls atomic.Int64
	store := func(name string, tags ...uint64) {
		t.Helper()
		if _, _, err := c.DoTagged(context.Background(), keyOf(name), tags, constant(&calls, 1, 10)); err != nil {
			t.Fatal(err)
		}
	}
	store("a", 1, 2)
	store("b", 2, 3)
	store("c", 4)
	store("untagged")

	// Tag 2 reaches a and b; tag 9 reaches nothing.
	if n := c.InvalidateTags(9, 2); n != 2 {
		t.Fatalf("InvalidateTags(9,2) = %d, want 2", n)
	}
	s := c.Stats()
	if s.Entries != 2 || s.Bytes != 20 {
		t.Fatalf("after invalidation: %+v, want 2 entries / 20 bytes", s)
	}
	if s.PartialInvalidations != 2 || s.Evictions != 2 {
		t.Fatalf("counters: %+v, want 2 partial invalidations counted as evictions", s)
	}
	// Survivors still hit; dropped keys recompute.
	if _, oc, _ := c.DoTagged(context.Background(), keyOf("c"), []uint64{4}, constant(&calls, 1, 10)); oc != Hit {
		t.Fatalf("untouched entry outcome = %v, want Hit", oc)
	}
	if _, oc, _ := c.DoTagged(context.Background(), keyOf("a"), []uint64{1, 2}, constant(&calls, 1, 10)); oc != Miss {
		t.Fatalf("invalidated entry outcome = %v, want Miss", oc)
	}
	// Naming an entry's tags twice drops it once.
	if n := c.InvalidateTags(1, 2); n != 1 {
		t.Fatalf("InvalidateTags(1,2) = %d, want 1 (entry dropped once)", n)
	}
}

// TestInvalidateTagsNotifiesOnEvict: tag invalidations flow through OnEvict
// like every other eviction, with the post-eviction totals.
func TestInvalidateTagsNotifiesOnEvict(t *testing.T) {
	type report struct {
		evicted, entries int
		bytes            int64
	}
	var mu sync.Mutex
	var reports []report
	c := New[int](Options{OnEvict: func(evicted, entries int, bytes int64) {
		mu.Lock()
		reports = append(reports, report{evicted, entries, bytes})
		mu.Unlock()
	}})
	var calls atomic.Int64
	for i, tags := range [][]uint64{{1}, {1}, {2}} {
		if _, _, err := c.DoTagged(context.Background(), keyOf(fmt.Sprint(i)), tags, constant(&calls, i, 5)); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.InvalidateTags(1); n != 2 {
		t.Fatalf("invalidated %d, want 2", n)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(reports) != 1 || reports[0] != (report{evicted: 2, entries: 1, bytes: 5}) {
		t.Fatalf("OnEvict reports = %+v, want one {2 1 5}", reports)
	}
}

// TestOnEvictTotalsConverge is the gauge-drift regression: concurrent Do
// flights evicting over a tight bound race their OnEvict callbacks, and a
// gauge mirroring the reported totals (as the HTTP service's
// opass_plan_cache_bytes does) must end exactly at the cache's true totals.
// The pre-fix code captured entry/byte snapshots before racing to the
// callback, so a stale pair could be delivered last and wedge the gauge.
func TestOnEvictTotalsConverge(t *testing.T) {
	var gaugeEntries, gaugeBytes atomic.Int64
	c := New[int](Options{
		MaxEntries: 4,
		OnEvict: func(evicted, entries int, bytes int64) {
			gaugeEntries.Store(int64(entries))
			gaugeBytes.Store(bytes)
		},
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var calls atomic.Int64
			for i := 0; i < 200; i++ {
				key := keyOf(fmt.Sprintf("g%d-i%d", g, i))
				if _, _, err := c.DoTagged(context.Background(), key, []uint64{uint64(i)}, constant(&calls, i, 3)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if got := gaugeEntries.Load(); got != int64(s.Entries) {
		t.Fatalf("entries gauge ended at %d, cache holds %d", got, s.Entries)
	}
	if got := gaugeBytes.Load(); got != s.Bytes {
		t.Fatalf("bytes gauge ended at %d, cache holds %d", got, s.Bytes)
	}
}

// TestOnEvictExpiredEntryDuringDo: a Do that finds its entry expired (and
// then leads or coalesces) reports the expiry through OnEvict with totals
// that reflect the removal.
func TestOnEvictExpiredEntryDuringDo(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	type report struct {
		evicted, entries int
		bytes            int64
	}
	var mu sync.Mutex
	var reports []report
	c := New[int](Options{
		TTL: time.Minute,
		Now: clk.now,
		OnEvict: func(evicted, entries int, bytes int64) {
			mu.Lock()
			reports = append(reports, report{evicted, entries, bytes})
			mu.Unlock()
		},
	})
	var calls atomic.Int64
	if _, _, err := c.Do(context.Background(), keyOf("k"), constant(&calls, 1, 7)); err != nil {
		t.Fatal(err)
	}
	clk.advance(2 * time.Minute)
	v, oc, err := c.Do(context.Background(), keyOf("k"), constant(&calls, 2, 9))
	if err != nil || v != 2 || oc != Miss {
		t.Fatalf("post-expiry Do = (%d, %v, %v), want (2, Miss, nil)", v, oc, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(reports) != 1 || reports[0].evicted != 1 {
		t.Fatalf("OnEvict reports = %+v, want one expiry", reports)
	}
	// The expiry callback races the recompute's store, but under the
	// serialized fresh-read contract it must have reported either the empty
	// cache or the restored entry — never the stale pre-expiry totals with
	// the old 7-byte size after removal.
	r := reports[0]
	if !(r.entries == 0 && r.bytes == 0) && !(r.entries == 1 && r.bytes == 9) {
		t.Fatalf("expiry report %+v is neither post-removal nor post-restore", r)
	}
}
