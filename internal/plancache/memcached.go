package plancache

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// MemcachedServer is a minimal in-process server speaking the subset of
// the memcached text protocol the Remote client uses (get/set, plus
// delete/flush_all/version for operational tests). It exists so the
// shared-tier path can be exercised end to end — unit tests, the -race CI
// job, and local multi-replica experiments — without a memcached binary in
// the environment. It is NOT a production cache: storage is an unbounded
// map with TTL-on-read expiry only.
type MemcachedServer struct {
	ln net.Listener
	wg sync.WaitGroup

	mu     sync.Mutex
	items  map[string]mcItem
	closed bool

	now func() time.Time // test clock override
}

type mcItem struct {
	flags   string
	value   []byte
	expires time.Time // zero means never
}

// NewMemcachedServer starts a server on a fresh loopback port. Close it
// when done.
func NewMemcachedServer() (*MemcachedServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &MemcachedServer{ln: ln, items: make(map[string]mcItem), now: time.Now}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the host:port the server listens on.
func (s *MemcachedServer) Addr() string { return s.ln.Addr().String() }

// Len reports the live (unexpired) item count.
func (s *MemcachedServer) Len() int {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, it := range s.items {
		if it.expires.IsZero() || now.Before(it.expires) {
			n++
		}
	}
	return n
}

// Close stops accepting and shuts down; established connections are closed
// by their handlers on the next read.
func (s *MemcachedServer) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.ln.Close()
	s.wg.Wait()
}

func (s *MemcachedServer) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(c)
		}()
	}
}

func (s *MemcachedServer) serve(c net.Conn) {
	defer c.Close()
	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)
	for {
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return
		}
		line, err := readLine(br)
		if err != nil {
			return
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			fmt.Fprintf(bw, "ERROR\r\n")
			bw.Flush()
			continue
		}
		switch fields[0] {
		case "get", "gets":
			s.handleGet(bw, fields[1:])
		case "set":
			if err := s.handleSet(br, bw, fields[1:]); err != nil {
				return
			}
		case "delete":
			s.handleDelete(bw, fields[1:])
		case "flush_all":
			s.mu.Lock()
			s.items = make(map[string]mcItem)
			s.mu.Unlock()
			fmt.Fprintf(bw, "OK\r\n")
		case "version":
			fmt.Fprintf(bw, "VERSION 0.0-opass\r\n")
		case "quit":
			bw.Flush()
			return
		default:
			fmt.Fprintf(bw, "ERROR\r\n")
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

func (s *MemcachedServer) handleGet(bw *bufio.Writer, keys []string) {
	now := s.now()
	for _, key := range keys {
		s.mu.Lock()
		it, ok := s.items[key]
		if ok && !it.expires.IsZero() && !now.Before(it.expires) {
			delete(s.items, key)
			ok = false
		}
		s.mu.Unlock()
		if !ok {
			continue
		}
		fmt.Fprintf(bw, "VALUE %s %s %d\r\n", key, it.flags, len(it.value))
		bw.Write(it.value)
		bw.WriteString("\r\n")
	}
	fmt.Fprintf(bw, "END\r\n")
}

// handleSet consumes the data block even on a malformed header, keeping
// the stream in sync; an unrecoverable framing problem returns an error
// and drops the connection, as real memcached does.
func (s *MemcachedServer) handleSet(br *bufio.Reader, bw *bufio.Writer, args []string) error {
	if len(args) < 4 {
		fmt.Fprintf(bw, "CLIENT_ERROR bad command line format\r\n")
		return nil
	}
	key, flags := args[0], args[1]
	exptime, err1 := strconv.Atoi(args[2])
	size, err2 := strconv.Atoi(args[3])
	if err1 != nil || err2 != nil || size < 0 || validKey(key) != nil {
		fmt.Fprintf(bw, "CLIENT_ERROR bad command line format\r\n")
		return fmt.Errorf("malformed set header")
	}
	buf := make([]byte, size+2)
	if _, err := io.ReadFull(br, buf); err != nil {
		return err
	}
	if buf[size] != '\r' || buf[size+1] != '\n' {
		fmt.Fprintf(bw, "CLIENT_ERROR bad data chunk\r\n")
		return fmt.Errorf("bad data chunk terminator")
	}
	var expires time.Time
	if exptime > 0 {
		if exptime > 30*24*3600 {
			expires = time.Unix(int64(exptime), 0)
		} else {
			expires = s.now().Add(time.Duration(exptime) * time.Second)
		}
	}
	s.mu.Lock()
	s.items[key] = mcItem{flags: flags, value: buf[:size:size], expires: expires}
	s.mu.Unlock()
	fmt.Fprintf(bw, "STORED\r\n")
	return nil
}

func (s *MemcachedServer) handleDelete(bw *bufio.Writer, args []string) {
	if len(args) < 1 {
		fmt.Fprintf(bw, "CLIENT_ERROR bad command line format\r\n")
		return
	}
	s.mu.Lock()
	_, ok := s.items[args[0]]
	delete(s.items, args[0])
	s.mu.Unlock()
	if ok {
		fmt.Fprintf(bw, "DELETED\r\n")
	} else {
		fmt.Fprintf(bw, "NOT_FOUND\r\n")
	}
}
