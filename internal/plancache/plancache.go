// Package plancache implements a content-addressed result cache with
// request coalescing, built for the planning service's hot path: Opass
// plans are pure functions of (topology, replica placement, tasks,
// strategy), so a request whose canonical fingerprint matches a previous
// one can be answered without re-running the matcher — the request-layer
// analogue of OS4M's reuse of global scheduling decisions across
// operations.
//
// The cache is safe only because invalidation is tied to file-system
// mutations: fingerprints embed the per-chunk placement epochs of exactly
// the chunks a problem reads (dfs.Chunk.Epoch via
// core.Problem.AppendCanonical), so a plan computed against stale placement
// can never be served for a mutated one — the delay-scheduling lesson that
// cached placement must stay fresh — while mutations to files a problem
// does not read leave its fingerprint, and thus its cached plan, hot.
//
// Four mechanisms compose:
//
//   - Content addressing: Key is a SHA-256 over length-framed sections
//     (KeyOf), so distinct problems cannot collide by field aliasing and
//     equality of keys is equality of problems.
//   - Bounded retention: an LRU doubly-linked list enforces entry and
//     byte bounds; entries also carry a TTL so a plan cannot outlive the
//     operator's freshness budget even if it stays hot.
//   - Coalescing (singleflight): concurrent Do calls with the same key
//     share one compute. The shared compute's context is detached from
//     any single caller's cancellation and is cancelled only when every
//     waiter has given up — one impatient client cannot abort work others
//     are still waiting for, but work nobody wants stops promptly.
//   - Surgical invalidation: entries may carry tags (DoTagged) — for plans,
//     the chunk IDs the problem reads — and InvalidateTags evicts exactly
//     the entries touching a mutated tag. Fingerprint epochs already keep
//     stale entries from being HIT; tagging additionally releases their
//     memory the moment the mutation lands instead of waiting for LRU/TTL
//     pressure, and drives the partial-invalidation counter.
package plancache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"sync"
	"time"
)

// Key is a content-addressed cache key.
type Key [sha256.Size]byte

// KeyOf hashes the given byte sections into a Key. Each section is
// length-prefixed before hashing, so section boundaries cannot alias:
// KeyOf("ab","c") differs from KeyOf("a","bc").
func KeyOf(sections ...[]byte) Key {
	h := sha256.New()
	var n [8]byte
	for _, s := range sections {
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write(s)
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// Outcome reports how a Do call was satisfied.
type Outcome int

const (
	// Miss: this call ran the compute function (it was the flight leader).
	Miss Outcome = iota
	// Hit: the value was served from the cache.
	Hit
	// Coalesced: the call attached to another caller's in-flight compute.
	Coalesced
)

// String implements fmt.Stringer for log and metric labels.
func (o Outcome) String() string {
	switch o {
	case Miss:
		return "miss"
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	default:
		return "unknown"
	}
}

// Options bounds a Cache.
type Options struct {
	// MaxEntries bounds the entry count; <= 0 means no entry bound.
	MaxEntries int
	// MaxBytes bounds the sum of caller-reported value sizes; <= 0 means
	// no byte bound. A single value larger than the bound is evicted
	// immediately after insertion (it can never fit).
	MaxBytes int64
	// TTL bounds entry age from insertion; <= 0 means entries never
	// expire.
	TTL time.Duration
	// Now overrides the clock for tests; nil means time.Now.
	Now func() time.Time
	// OnEvict, if set, is called (outside the cache lock) after evictions
	// with the number of entries evicted and the cache's new entry/byte
	// totals. TTL expiries count as evictions.
	OnEvict func(evicted int, entries int, bytes int64)
}

type entry[V any] struct {
	key     Key
	val     V
	size    int64
	expires time.Time // zero means never
	elem    *list.Element
	tags    []uint64
}

// call is one in-flight shared compute.
type call[V any] struct {
	done    chan struct{} // closed after val/err are set
	val     V
	size    int64
	err     error
	waiters int                // callers currently blocked on done
	cancel  context.CancelFunc // cancels the compute's context
}

// Cache is a bounded, coalescing, content-addressed cache. All methods are
// safe for concurrent use.
type Cache[V any] struct {
	opts Options

	mu        sync.Mutex
	entries   map[Key]*entry[V]
	lru       *list.List // front = most recently used
	bytes     int64
	calls     map[Key]*call[V]
	byTag     map[uint64]map[Key]struct{}
	evictions uint64
	partials  uint64

	// notifyMu serializes OnEvict callbacks. Totals are re-read under mu
	// inside the critical section, so callbacks observe entry/byte totals in
	// a consistent, time-monotonic order — concurrent evictors can no longer
	// deliver stale snapshots out of order and wedge a gauge on an old value.
	notifyMu sync.Mutex
}

// New creates a cache with the given bounds.
func New[V any](opts Options) *Cache[V] {
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Cache[V]{
		opts:    opts,
		entries: make(map[Key]*entry[V]),
		lru:     list.New(),
		calls:   make(map[Key]*call[V]),
		byTag:   make(map[uint64]map[Key]struct{}),
	}
}

// Stats is a point-in-time summary of the cache.
type Stats struct {
	Entries   int
	Bytes     int64
	Evictions uint64 // lifetime total, including TTL expiries and invalidations
	// PartialInvalidations counts entries evicted by InvalidateTags — plans
	// dropped because a placement mutation touched a chunk they read, as
	// opposed to capacity or TTL evictions.
	PartialInvalidations uint64
}

// Stats reports the current entry/byte totals and lifetime evictions.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Entries: c.lru.Len(), Bytes: c.bytes, Evictions: c.evictions, PartialInvalidations: c.partials}
}

// Get returns the cached value for key without joining or starting a
// compute — the plain-lookup face of the cache used by the Tier adapter.
// A hit refreshes the entry's LRU position; an expired entry is evicted
// and reported as a miss.
func (c *Cache[V]) Get(key Key) (V, bool) {
	now := c.opts.Now()
	expired := 0
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok && (e.expires.IsZero() || now.Before(e.expires)) {
		c.lru.MoveToFront(e.elem)
		v := e.val
		c.mu.Unlock()
		return v, true
	}
	if ok {
		c.removeLocked(e)
		c.evictions++
		expired = 1
	}
	c.mu.Unlock()
	c.notifyEvict(expired)
	var zero V
	return zero, false
}

// Put stores a value directly, bypassing the singleflight machinery — for
// values computed elsewhere (another replica via the shared tier). Bounds
// and TTL apply exactly as for values landed by Do.
func (c *Cache[V]) Put(key Key, v V, size int64) {
	c.mu.Lock()
	evicted := c.storeLocked(key, v, size, nil)
	c.mu.Unlock()
	c.notifyEvict(evicted)
}

// Do returns the value for key, computing it at most once across
// concurrent callers. On a hit the cached value is returned immediately.
// Otherwise the first caller becomes the flight leader and runs compute in
// a separate goroutine; callers arriving while it runs coalesce onto it.
//
// compute receives a context that is NOT cancelled when an individual
// waiter's ctx is — only when every waiter has abandoned the flight. It
// must return the value and a non-negative size estimate in bytes (used
// for the MaxBytes bound). Errors are returned to every waiter and never
// cached.
//
// A caller whose ctx is done returns ctx.Err() immediately; the shared
// compute keeps running for the remaining waiters and still populates the
// cache. The reported Outcome tells whether this caller led the flight
// (Miss), attached to one (Coalesced), or was served from the cache (Hit).
func (c *Cache[V]) Do(ctx context.Context, key Key, compute func(context.Context) (V, int64, error)) (V, Outcome, error) {
	return c.DoTagged(ctx, key, nil, compute)
}

// DoTagged is Do with invalidation tags attached to the stored entry: a
// later InvalidateTags call naming any of them evicts it. For plans the
// tags are the chunk IDs the problem reads, so a placement mutation can
// drop exactly the affected entries. Tags must be a pure function of the
// key (callers coalescing on the same key are assumed to pass equal tags;
// the flight leader's tags win).
func (c *Cache[V]) DoTagged(ctx context.Context, key Key, tags []uint64, compute func(context.Context) (V, int64, error)) (V, Outcome, error) {
	now := c.opts.Now()
	expired := 0
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if e.expires.IsZero() || now.Before(e.expires) {
			c.lru.MoveToFront(e.elem)
			v := e.val
			c.mu.Unlock()
			return v, Hit, nil
		}
		c.removeLocked(e)
		c.evictions++
		expired = 1
	}
	if cl, ok := c.calls[key]; ok {
		cl.waiters++
		c.mu.Unlock()
		c.notifyEvict(expired)
		return c.wait(ctx, cl, Coalesced)
	}
	// Flight leader: run the compute detached from this caller's
	// cancellation, under a cancel hook the last departing waiter pulls.
	cctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	cl := &call[V]{done: make(chan struct{}), waiters: 1, cancel: cancel}
	c.calls[key] = cl
	c.mu.Unlock()
	c.notifyEvict(expired)
	go c.run(key, cl, cctx, cancel, tags, compute)
	return c.wait(ctx, cl, Miss)
}

// run executes the shared compute and publishes its result.
func (c *Cache[V]) run(key Key, cl *call[V], cctx context.Context, cancel context.CancelFunc, tags []uint64, compute func(context.Context) (V, int64, error)) {
	v, size, err := compute(cctx)
	cancel() // release the context's resources; waiters are signalled via done
	c.mu.Lock()
	cl.val, cl.size, cl.err = v, size, err
	delete(c.calls, key)
	evicted := 0
	if err == nil {
		evicted = c.storeLocked(key, v, size, tags)
	}
	c.mu.Unlock()
	// close(done) happens after the fields above are set; waiters that see
	// the close observe them without taking the lock.
	close(cl.done)
	c.notifyEvict(evicted)
}

// InvalidateTags evicts every entry carrying any of the given tags and
// returns how many entries were dropped. It is the surgical-invalidation
// hook: a placement mutation names the chunks it touched, and only cached
// plans reading those chunks pay. In-flight computes are not interrupted
// (their results land with post-mutation fingerprints or are superseded on
// the next lookup); entries without a named tag are untouched.
func (c *Cache[V]) InvalidateTags(tags ...uint64) int {
	c.mu.Lock()
	removed := 0
	for _, tag := range tags {
		for key := range c.byTag[tag] {
			if e, ok := c.entries[key]; ok {
				c.removeLocked(e)
				removed++
			}
		}
	}
	c.evictions += uint64(removed)
	c.partials += uint64(removed)
	c.mu.Unlock()
	c.notifyEvict(removed)
	return removed
}

// wait blocks until the shared compute finishes or ctx is done. A departing
// waiter deregisters; the last one out cancels the compute, since nobody
// will consume its result.
func (c *Cache[V]) wait(ctx context.Context, cl *call[V], oc Outcome) (V, Outcome, error) {
	select {
	case <-cl.done:
		return cl.val, oc, cl.err
	case <-ctx.Done():
		c.mu.Lock()
		cl.waiters--
		abandon := cl.waiters == 0
		c.mu.Unlock()
		if abandon {
			cl.cancel()
		}
		var zero V
		return zero, oc, ctx.Err()
	}
}

// storeLocked inserts (or refreshes) an entry and enforces the bounds,
// returning how many entries were evicted. On a refresh the old entry's
// bytes are released before the new size is charged (the delta update) and
// its old tags are dropped before the new ones attach, so neither the byte
// accounting nor the tag index can drift when a key is overwritten.
func (c *Cache[V]) storeLocked(key Key, v V, size int64, tags []uint64) int {
	if size < 0 {
		size = 0
	}
	var expires time.Time
	if c.opts.TTL > 0 {
		expires = c.opts.Now().Add(c.opts.TTL)
	}
	if e, ok := c.entries[key]; ok {
		c.bytes += size - e.size
		c.untagLocked(e)
		e.val, e.size, e.expires, e.tags = v, size, expires, tags
		c.tagLocked(e)
		c.lru.MoveToFront(e.elem)
	} else {
		e := &entry[V]{key: key, val: v, size: size, expires: expires, tags: tags}
		e.elem = c.lru.PushFront(e)
		c.entries[key] = e
		c.bytes += size
		c.tagLocked(e)
	}
	evicted := 0
	for c.overBoundLocked() {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.removeLocked(back.Value.(*entry[V]))
		evicted++
	}
	c.evictions += uint64(evicted)
	return evicted
}

func (c *Cache[V]) overBoundLocked() bool {
	if c.opts.MaxEntries > 0 && c.lru.Len() > c.opts.MaxEntries {
		return true
	}
	if c.opts.MaxBytes > 0 && c.bytes > c.opts.MaxBytes {
		return true
	}
	return false
}

func (c *Cache[V]) removeLocked(e *entry[V]) {
	c.lru.Remove(e.elem)
	delete(c.entries, e.key)
	c.bytes -= e.size
	c.untagLocked(e)
}

func (c *Cache[V]) tagLocked(e *entry[V]) {
	for _, tag := range e.tags {
		m := c.byTag[tag]
		if m == nil {
			m = make(map[Key]struct{})
			c.byTag[tag] = m
		}
		m[e.key] = struct{}{}
	}
}

func (c *Cache[V]) untagLocked(e *entry[V]) {
	for _, tag := range e.tags {
		if m := c.byTag[tag]; m != nil {
			delete(m, e.key)
			if len(m) == 0 {
				delete(c.byTag, tag)
			}
		}
	}
}

// notifyEvict delivers an OnEvict callback for evicted entries. The caller
// must NOT hold c.mu. Callbacks are serialized under notifyMu with totals
// read fresh inside the critical section: two concurrent evictors therefore
// deliver totals in a consistent order, and a gauge mirroring them always
// converges to the cache's true state (the old code captured snapshots
// before racing to the callback, so a stale pair could land last).
func (c *Cache[V]) notifyEvict(evicted int) {
	if c.opts.OnEvict == nil || evicted == 0 {
		return
	}
	c.notifyMu.Lock()
	defer c.notifyMu.Unlock()
	c.mu.Lock()
	entries, bytes := c.lru.Len(), c.bytes
	c.mu.Unlock()
	c.opts.OnEvict(evicted, entries, bytes)
}
