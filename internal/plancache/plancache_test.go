package plancache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a settable test clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func keyOf(s string) Key { return KeyOf([]byte(s)) }

// constant returns a compute function yielding v with the given size,
// counting invocations.
func constant(calls *atomic.Int64, v int, size int64) func(context.Context) (int, int64, error) {
	return func(context.Context) (int, int64, error) {
		calls.Add(1)
		return v, size, nil
	}
}

func mustDo(t *testing.T, c *Cache[int], key Key, fn func(context.Context) (int, int64, error)) (int, Outcome) {
	t.Helper()
	v, oc, err := c.Do(context.Background(), key, fn)
	if err != nil {
		t.Fatal(err)
	}
	return v, oc
}

func TestKeyOfFraming(t *testing.T) {
	if KeyOf([]byte("ab"), []byte("c")) == KeyOf([]byte("a"), []byte("bc")) {
		t.Fatal("section boundaries alias")
	}
	if KeyOf([]byte("ab")) == KeyOf([]byte("ab"), nil) {
		t.Fatal("trailing empty section aliases")
	}
	if KeyOf([]byte("ab")) != KeyOf([]byte("ab")) {
		t.Fatal("KeyOf is not deterministic")
	}
}

func TestOutcomeString(t *testing.T) {
	for oc, want := range map[Outcome]string{Miss: "miss", Hit: "hit", Coalesced: "coalesced", Outcome(99): "unknown"} {
		if got := oc.String(); got != want {
			t.Errorf("Outcome(%d).String() = %q, want %q", int(oc), got, want)
		}
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := New[int](Options{MaxEntries: 8})
	var calls atomic.Int64
	v, oc := mustDo(t, c, keyOf("k"), constant(&calls, 42, 10))
	if v != 42 || oc != Miss {
		t.Fatalf("first Do = (%d, %v), want (42, Miss)", v, oc)
	}
	v, oc = mustDo(t, c, keyOf("k"), constant(&calls, 99, 10))
	if v != 42 || oc != Hit {
		t.Fatalf("second Do = (%d, %v), want cached (42, Hit)", v, oc)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	if s := c.Stats(); s.Entries != 1 || s.Bytes != 10 || s.Evictions != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestEntryBoundEvictsLRU(t *testing.T) {
	var evictions atomic.Int64
	c := New[int](Options{
		MaxEntries: 2,
		OnEvict:    func(n, _ int, _ int64) { evictions.Add(int64(n)) },
	})
	var calls atomic.Int64
	mustDo(t, c, keyOf("a"), constant(&calls, 1, 1))
	mustDo(t, c, keyOf("b"), constant(&calls, 2, 1))
	mustDo(t, c, keyOf("a"), constant(&calls, 0, 1)) // touch a: b becomes LRU
	mustDo(t, c, keyOf("c"), constant(&calls, 3, 1)) // evicts b
	if _, oc := mustDo(t, c, keyOf("a"), constant(&calls, 0, 1)); oc != Hit {
		t.Fatalf("a should have survived (outcome %v)", oc)
	}
	if _, oc := mustDo(t, c, keyOf("b"), constant(&calls, 2, 1)); oc != Miss {
		t.Fatalf("b should have been evicted (outcome %v)", oc)
	}
	if evictions.Load() != 1+1 { // b once, then c or a when b re-added over bound
		t.Fatalf("OnEvict saw %d evictions", evictions.Load())
	}
	if s := c.Stats(); s.Entries != 2 {
		t.Fatalf("entries = %d, want 2", s.Entries)
	}
}

func TestByteBoundEvicts(t *testing.T) {
	c := New[int](Options{MaxBytes: 100})
	var calls atomic.Int64
	mustDo(t, c, keyOf("a"), constant(&calls, 1, 60))
	mustDo(t, c, keyOf("b"), constant(&calls, 2, 60)) // 120 > 100: a evicted
	s := c.Stats()
	if s.Entries != 1 || s.Bytes != 60 || s.Evictions != 1 {
		t.Fatalf("stats = %+v, want 1 entry / 60 bytes / 1 eviction", s)
	}
	if _, oc := mustDo(t, c, keyOf("a"), constant(&calls, 1, 60)); oc != Miss {
		t.Fatalf("a should have been evicted (outcome %v)", oc)
	}
	// A value that alone exceeds the bound is never retained.
	mustDo(t, c, keyOf("big"), constant(&calls, 3, 1000))
	if s := c.Stats(); s.Bytes > 100 {
		t.Fatalf("oversized value retained: %+v", s)
	}
}

func TestTTLExpiry(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	var evictions atomic.Int64
	c := New[int](Options{
		MaxEntries: 8,
		TTL:        time.Minute,
		Now:        clock.now,
		OnEvict:    func(n, _ int, _ int64) { evictions.Add(int64(n)) },
	})
	var calls atomic.Int64
	mustDo(t, c, keyOf("k"), constant(&calls, 1, 1))
	clock.advance(59 * time.Second)
	if _, oc := mustDo(t, c, keyOf("k"), constant(&calls, 1, 1)); oc != Hit {
		t.Fatalf("entry expired early (outcome %v)", oc)
	}
	clock.advance(2 * time.Second) // past the minute
	if _, oc := mustDo(t, c, keyOf("k"), constant(&calls, 1, 1)); oc != Miss {
		t.Fatalf("expired entry served (outcome %v)", oc)
	}
	if calls.Load() != 2 {
		t.Fatalf("compute ran %d times, want 2", calls.Load())
	}
	if evictions.Load() != 1 {
		t.Fatalf("expiry not reported as eviction (%d)", evictions.Load())
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New[int](Options{MaxEntries: 8})
	boom := errors.New("boom")
	var calls atomic.Int64
	_, _, err := c.Do(context.Background(), keyOf("k"), func(context.Context) (int, int64, error) {
		calls.Add(1)
		return 0, 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("error cached: %+v", s)
	}
	if _, oc := mustDo(t, c, keyOf("k"), constant(&calls, 7, 1)); oc != Miss {
		t.Fatalf("second call after error should recompute (outcome %v)", oc)
	}
	if calls.Load() != 2 {
		t.Fatalf("compute ran %d times, want 2", calls.Load())
	}
}

// waiters reports how many callers are attached to the in-flight compute
// for key.
func waiters(c *Cache[int], key Key) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cl, ok := c.calls[key]; ok {
		return cl.waiters
	}
	return 0
}

// waitFor polls until cond is true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoalescing: N concurrent Do calls with one key run the compute once;
// everyone gets the same value; exactly one leads (Miss), the rest coalesce.
func TestCoalescing(t *testing.T) {
	c := New[int](Options{MaxEntries: 8})
	const n = 8
	key := keyOf("k")
	release := make(chan struct{})
	var calls atomic.Int64
	compute := func(context.Context) (int, int64, error) {
		calls.Add(1)
		<-release
		return 123, 8, nil
	}
	var wg sync.WaitGroup
	outcomes := make([]Outcome, n)
	values := make([]int, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			values[i], outcomes[i], errs[i] = c.Do(context.Background(), key, compute)
		}(i)
	}
	waitFor(t, "all callers to attach", func() bool { return waiters(c, key) == n })
	close(release)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1", calls.Load())
	}
	misses, coalesced := 0, 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if values[i] != 123 {
			t.Fatalf("caller %d got %d", i, values[i])
		}
		switch outcomes[i] {
		case Miss:
			misses++
		case Coalesced:
			coalesced++
		default:
			t.Fatalf("caller %d outcome %v", i, outcomes[i])
		}
	}
	if misses != 1 || coalesced != n-1 {
		t.Fatalf("misses=%d coalesced=%d, want 1 and %d", misses, coalesced, n-1)
	}
	// The flight's result was cached.
	if _, oc := mustDo(t, c, key, compute); oc != Hit {
		t.Fatalf("post-flight lookup outcome %v, want Hit", oc)
	}
}

// TestWaiterCancelKeepsSharedCompute: one coalesced waiter cancelling must
// not abort the compute the others are waiting for, and their results stay
// intact.
func TestWaiterCancelKeepsSharedCompute(t *testing.T) {
	c := New[int](Options{MaxEntries: 8})
	key := keyOf("k")
	release := make(chan struct{})
	computeCtxErr := make(chan error, 1)
	compute := func(ctx context.Context) (int, int64, error) {
		<-release
		computeCtxErr <- ctx.Err()
		return 7, 1, nil
	}
	leaderDone := make(chan error, 1)
	var leaderVal int
	go func() {
		v, _, err := c.Do(context.Background(), key, compute)
		leaderVal = v
		leaderDone <- err
	}()
	waitFor(t, "leader to attach", func() bool { return waiters(c, key) == 1 })

	wctx, wcancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, oc, err := c.Do(wctx, key, compute)
		if oc != Coalesced {
			err = fmt.Errorf("waiter outcome %v, want Coalesced (err %v)", oc, err)
		}
		waiterDone <- err
	}()
	waitFor(t, "waiter to attach", func() bool { return waiters(c, key) == 2 })

	wcancel()
	if err := <-waiterDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter err = %v, want context.Canceled", err)
	}
	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader err = %v", err)
	}
	if leaderVal != 7 {
		t.Fatalf("leader value = %d, want 7", leaderVal)
	}
	// The shared compute never saw a cancellation.
	if err := <-computeCtxErr; err != nil {
		t.Fatalf("shared compute ctx was cancelled: %v", err)
	}
	// And the result was cached for later callers.
	if v, oc := mustDo(t, c, key, compute); v != 7 || oc != Hit {
		t.Fatalf("post-flight Do = (%d, %v), want (7, Hit)", v, oc)
	}
}

// TestAllWaitersCancelAbortsCompute: once every caller abandons the
// flight, the shared compute's context is cancelled so it stops burning
// CPU for nobody.
func TestAllWaitersCancelAbortsCompute(t *testing.T) {
	c := New[int](Options{MaxEntries: 8})
	key := keyOf("k")
	aborted := make(chan struct{})
	compute := func(ctx context.Context) (int, int64, error) {
		<-ctx.Done()
		close(aborted)
		return 0, 0, ctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctx, key, compute)
		done <- err
	}()
	waitFor(t, "leader to attach", func() bool { return waiters(c, key) == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("caller err = %v, want context.Canceled", err)
	}
	select {
	case <-aborted:
	case <-time.After(5 * time.Second):
		t.Fatal("shared compute not cancelled after every waiter left")
	}
	// The aborted flight cached nothing.
	waitFor(t, "flight to clear", func() bool { return waiters(c, key) == 0 })
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("aborted flight cached an entry: %+v", s)
	}
}

// TestConcurrentMixedKeys hammers the cache from many goroutines across a
// small key space; run with -race. Asserts only invariants.
func TestConcurrentMixedKeys(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	c := New[int](Options{MaxEntries: 4, MaxBytes: 64, TTL: time.Hour, Now: clock.now})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := keyOf(fmt.Sprintf("key-%d", (g+i)%6))
				want := (g + i) % 6
				v, _, err := c.Do(context.Background(), k, func(context.Context) (int, int64, error) {
					return want, 16, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if v != want {
					t.Errorf("key %d returned %d", want, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Entries > 4 || s.Bytes > 64 {
		t.Fatalf("bounds violated: %+v", s)
	}
}
