package plancache

import (
	"context"

	"opass/internal/core"
	"opass/internal/dfs"
)

// ProblemCache binds a Cache of assignments to one live dfs.FileSystem,
// closing the surgical-invalidation loop for library callers (the HTTP
// planning service reconstructs a file system per request, so it relies on
// fingerprint epochs alone; a long-lived embedder shares one FS with the
// admin operations that mutate it and wants stale plans dropped eagerly):
//
//   - Keys are the problem's canonical fingerprint plus caller salt
//     (strategy name, planner parameters), so per-chunk placement epochs
//     make any stale entry unreachable.
//   - Entries are tagged with the chunk IDs the problem reads, and the
//     file system's placement observer invalidates exactly the entries
//     whose chunks a mutation touched — a replica move on file A evicts
//     nothing that only reads file B.
//
// NewProblemCache registers the cache as the file system's placement
// observer (dfs.FileSystem.OnPlacementChange), replacing any previous one.
type ProblemCache struct {
	fs    *dfs.FileSystem
	cache *Cache[*core.Assignment]

	onInvalidate func(evicted int)
}

// ProblemCacheOptions configures a ProblemCache.
type ProblemCacheOptions struct {
	// Cache carries the retention bounds and eviction callback for the
	// underlying Cache.
	Cache Options
	// OnInvalidate, if set, is called after every placement mutation that
	// evicted cached plans, with the number of entries dropped — the feed
	// for the opass_plan_cache_partial_invalidations_total counter. It is
	// invoked synchronously from the mutating call.
	OnInvalidate func(evicted int)
}

// NewProblemCache creates a plan cache bound to fs and installs its
// placement observer.
func NewProblemCache(fs *dfs.FileSystem, opts ProblemCacheOptions) *ProblemCache {
	pc := &ProblemCache{
		fs:           fs,
		cache:        New[*core.Assignment](opts.Cache),
		onInvalidate: opts.OnInvalidate,
	}
	fs.OnPlacementChange(func(changed []dfs.ChunkID) {
		if len(changed) == 0 {
			return
		}
		tags := make([]uint64, len(changed))
		for i, id := range changed {
			tags[i] = uint64(id)
		}
		if n := pc.cache.InvalidateTags(tags...); n > 0 && pc.onInvalidate != nil {
			pc.onInvalidate(n)
		}
	})
	return pc
}

// Plan returns the assignment for p under the given planner, serving it
// from the cache when a byte-identical problem (same placement epochs) was
// planned before, and computing + caching it otherwise with full request
// coalescing. salt distinguishes plans that differ only in planner
// configuration (strategy name, seed, weights); callers must include every
// parameter that changes the output.
func (pc *ProblemCache) Plan(ctx context.Context, p *core.Problem, planner core.Assigner, salt ...[]byte) (*core.Assignment, Outcome, error) {
	sections := make([][]byte, 0, len(salt)+2)
	sections = append(sections, p.AppendCanonical(nil), []byte(planner.Name()))
	sections = append(sections, salt...)
	key := KeyOf(sections...)
	return pc.cache.DoTagged(ctx, key, chunkTags(p), func(cctx context.Context) (*core.Assignment, int64, error) {
		a, err := core.AssignContext(cctx, planner, p)
		if err != nil {
			return nil, 0, err
		}
		return a, assignmentSize(a), nil
	})
}

// Stats reports the underlying cache's totals.
func (pc *ProblemCache) Stats() Stats { return pc.cache.Stats() }

// chunkTags collects the distinct chunk IDs p reads, in first-use order.
func chunkTags(p *core.Problem) []uint64 {
	seen := make(map[uint64]struct{})
	var tags []uint64
	for i := range p.Tasks {
		for _, in := range p.Tasks[i].Inputs {
			id := uint64(in.Chunk)
			if _, ok := seen[id]; ok {
				continue
			}
			seen[id] = struct{}{}
			tags = append(tags, id)
		}
	}
	return tags
}

// assignmentSize estimates an assignment's retained bytes for the cache's
// byte bound: the Owner and Lists int slices dominate.
func assignmentSize(a *core.Assignment) int64 {
	n := int64(len(a.Owner))
	for _, l := range a.Lists {
		n += int64(len(l)) + 3 // slice header overhead in ints
	}
	return n*8 + 64
}
