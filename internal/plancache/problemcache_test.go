package plancache

import (
	"context"
	"fmt"
	"testing"

	"opass/internal/core"
	"opass/internal/dfs"
)

type clusterView struct{ n int }

func (v clusterView) NumNodes() int       { return v.n }
func (v clusterView) RackOf(node int) int { return 0 }

// problemRig is a ProblemCache over one FS with one cached plan per file.
type problemRig struct {
	fs          *dfs.FileSystem
	pc          *ProblemCache
	files       []string
	probs       map[string]*core.Problem
	chunks      map[string]map[dfs.ChunkID]bool
	invalidated int
}

func buildProblemRig(t *testing.T, nodes, files, chunksPerFile int, seed int64, pol dfs.Placement) *problemRig {
	t.Helper()
	rig := &problemRig{
		fs:     dfs.New(clusterView{nodes}, dfs.Config{Seed: seed, Placement: pol}),
		probs:  map[string]*core.Problem{},
		chunks: map[string]map[dfs.ChunkID]bool{},
	}
	rig.pc = NewProblemCache(rig.fs, ProblemCacheOptions{
		OnInvalidate: func(evicted int) { rig.invalidated += evicted },
	})
	procNode := make([]int, nodes)
	for i := range procNode {
		procNode[i] = i
	}
	for i := 0; i < files; i++ {
		name := fmt.Sprintf("/f%d", i)
		f, err := rig.fs.Create(name, float64(chunksPerFile)*64)
		if err != nil {
			t.Fatal(err)
		}
		rig.files = append(rig.files, name)
		rig.chunks[name] = map[dfs.ChunkID]bool{}
		for _, id := range f.Chunks {
			rig.chunks[name][id] = true
		}
		p, err := core.SingleDataProblem(rig.fs, []string{name}, procNode)
		if err != nil {
			t.Fatal(err)
		}
		rig.probs[name] = p
	}
	return rig
}

// plan runs every file's problem through the cache and returns the per-file
// outcome.
func (rig *problemRig) plan(t *testing.T) map[string]Outcome {
	t.Helper()
	out := map[string]Outcome{}
	for _, name := range rig.files {
		_, oc, err := rig.pc.Plan(context.Background(), rig.probs[name], core.SingleData{Seed: 1})
		if err != nil {
			t.Fatalf("plan %s: %v", name, err)
		}
		out[name] = oc
	}
	return out
}

// epochSnapshot records the placement epoch of every chunk of every file.
func (rig *problemRig) epochSnapshot() map[dfs.ChunkID]uint64 {
	out := map[dfs.ChunkID]uint64{}
	for _, name := range rig.files {
		for id := range rig.chunks[name] {
			out[id] = rig.fs.Chunk(id).Epoch()
		}
	}
	return out
}

// TestProblemCacheSurgicalInvalidation is the table-driven
// mutation→expected-evictions audit: node death, re-replication repair, and
// a balancer run must each evict exactly the cached plans of files whose
// chunks the mutation touched, leave every other plan hot, and account the
// drops in the partial-invalidation counter.
func TestProblemCacheSurgicalInvalidation(t *testing.T) {
	cases := []struct {
		name   string
		layout dfs.Placement
		// prep runs before the measurement window (it may mutate freely);
		// mutate is the audited placement change.
		prep   func(t *testing.T, rig *problemRig)
		mutate func(t *testing.T, rig *problemRig)
	}{
		{
			// A DataNode dies: every file with a replica there is touched.
			name:   "node-death",
			layout: dfs.RandomPlacement{},
			mutate: func(t *testing.T, rig *problemRig) {
				node := rig.fs.Chunk(0).Replicas[0]
				if _, _, err := rig.fs.Crash(node); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			// Repair after a crash: exactly the re-replicated chunks move.
			name:   "re-replicate",
			layout: dfs.RandomPlacement{},
			prep: func(t *testing.T, rig *problemRig) {
				node := rig.fs.Chunk(0).Replicas[0]
				if _, _, err := rig.fs.Crash(node); err != nil {
					t.Fatal(err)
				}
			},
			mutate: func(t *testing.T, rig *problemRig) {
				if repaired := rig.fs.ReReplicate(); repaired == 0 {
					t.Fatal("nothing to repair; fixture broken")
				}
			},
		},
		{
			// Balancer pass over a clustered (skewed) layout.
			name:   "balancer",
			layout: dfs.ClusteredPlacement{},
			mutate: func(t *testing.T, rig *problemRig) {
				if moved := rig.fs.Balance(0.1); moved == 0 {
					t.Fatal("balancer moved nothing; fixture broken")
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rig := buildProblemRig(t, 16, 6, 3, 91, tc.layout)
			if tc.prep != nil {
				tc.prep(t, rig)
			}
			if oc := rig.plan(t); oc[rig.files[0]] != Miss {
				t.Fatalf("first plan outcome = %v, want Miss", oc[rig.files[0]])
			}
			if oc := rig.plan(t); oc[rig.files[0]] != Hit {
				t.Fatalf("second plan outcome = %v, want Hit", oc[rig.files[0]])
			}

			before := rig.epochSnapshot()
			rig.invalidated = 0
			basePartials := rig.pc.Stats().PartialInvalidations
			tc.mutate(t, rig)

			// Derive the touched files from the per-chunk epochs and compare
			// against what the cache actually dropped.
			touched := map[string]bool{}
			for _, name := range rig.files {
				for id := range rig.chunks[name] {
					if rig.fs.Chunk(id).Epoch() != before[id] {
						touched[name] = true
					}
				}
			}
			if len(touched) == 0 || len(touched) == len(rig.files) {
				t.Fatalf("fixture not discriminating: %d of %d files touched", len(touched), len(rig.files))
			}
			if rig.invalidated != len(touched) {
				t.Fatalf("mutation evicted %d plans, want exactly the %d touched files (%v)",
					rig.invalidated, len(touched), touched)
			}
			if got := rig.pc.Stats().PartialInvalidations - basePartials; got != uint64(len(touched)) {
				t.Fatalf("PartialInvalidations advanced by %d, want %d", got, len(touched))
			}

			// Untouched files stay hot; touched files recompute.
			for name, oc := range rig.plan(t) {
				want := Hit
				if touched[name] {
					want = Miss
				}
				if oc != want {
					t.Fatalf("%s (touched=%v): outcome = %v, want %v", name, touched[name], oc, want)
				}
			}
		})
	}
}
