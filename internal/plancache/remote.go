package plancache

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Remote is a Tier backed by any server speaking the memcached text
// protocol (memcached itself, twemproxy/mcrouter fleets, or the in-process
// MemcachedServer used in tests and CI). Only two verbs are used — get and
// set — which every protocol-compatible proxy supports.
//
// Connections are pooled: a request takes an idle connection or dials a
// new one, and returns it after a clean exchange. Any network or protocol
// error closes the connection (the stream state is unknowable) and surfaces
// the error to the caller, who treats it as a miss — a flaky or absent
// remote tier degrades opassd to single-replica caching, never to wrong
// answers or unavailability.
type Remote struct {
	addr    string
	dial    func(ctx context.Context) (net.Conn, error)
	timeout time.Duration
	maxIdle int

	mu     sync.Mutex
	idle   []*remoteConn
	closed bool

	hits   atomic.Uint64
	misses atomic.Uint64
	errors atomic.Uint64
	sets   atomic.Uint64
}

// RemoteOptions configures a Remote tier.
type RemoteOptions struct {
	// Timeout bounds each network exchange (dial, write, read). <= 0 means
	// DefaultRemoteTimeout. The per-call ctx deadline, when earlier, wins.
	Timeout time.Duration
	// MaxIdleConns bounds the pooled idle connections; <= 0 means 4.
	MaxIdleConns int
	// Dial overrides the dialer for tests; nil dials TCP to the address.
	Dial func(ctx context.Context) (net.Conn, error)
}

// DefaultRemoteTimeout bounds remote-tier exchanges when no timeout is
// configured: long enough for a multi-MB plan body on a LAN, short enough
// that a dead memcached never stalls a planning request noticeably.
const DefaultRemoteTimeout = 250 * time.Millisecond

type remoteConn struct {
	c net.Conn
	r *bufio.Reader
	w *bufio.Writer
}

// NewRemote creates a memcached-protocol Tier client for addr
// (host:port).
func NewRemote(addr string, opts RemoteOptions) *Remote {
	r := &Remote{
		addr:    addr,
		timeout: opts.Timeout,
		maxIdle: opts.MaxIdleConns,
		dial:    opts.Dial,
	}
	if r.timeout <= 0 {
		r.timeout = DefaultRemoteTimeout
	}
	if r.maxIdle <= 0 {
		r.maxIdle = 4
	}
	if r.dial == nil {
		r.dial = func(ctx context.Context) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	return r
}

// RemoteStats is a point-in-time summary of the remote tier's traffic.
type RemoteStats struct {
	Hits   uint64
	Misses uint64
	Errors uint64
	Sets   uint64
}

// Stats reports lifetime hit/miss/error/set counts.
func (r *Remote) Stats() RemoteStats {
	return RemoteStats{
		Hits:   r.hits.Load(),
		Misses: r.misses.Load(),
		Errors: r.errors.Load(),
		Sets:   r.sets.Load(),
	}
}

// Close drops all pooled connections. In-flight exchanges finish on their
// own connections; subsequent calls dial fresh.
func (r *Remote) Close() {
	r.mu.Lock()
	idle := r.idle
	r.idle = nil
	r.closed = true
	r.mu.Unlock()
	for _, rc := range idle {
		rc.c.Close()
	}
}

// validKey enforces the memcached key rules: 1..250 bytes, no whitespace
// or control characters. TierKey output always passes.
func validKey(key string) error {
	if len(key) == 0 || len(key) > 250 {
		return fmt.Errorf("plancache: remote key length %d outside [1,250]", len(key))
	}
	for i := 0; i < len(key); i++ {
		if key[i] <= ' ' || key[i] == 0x7f {
			return fmt.Errorf("plancache: remote key contains byte %#x at %d", key[i], i)
		}
	}
	return nil
}

// Get implements Tier with the memcached "get" verb.
func (r *Remote) Get(ctx context.Context, key string) ([]byte, bool, error) {
	if err := validKey(key); err != nil {
		r.errors.Add(1)
		return nil, false, err
	}
	var value []byte
	var found bool
	err := r.exchange(ctx, func(rc *remoteConn) error {
		if _, err := fmt.Fprintf(rc.w, "get %s\r\n", key); err != nil {
			return err
		}
		if err := rc.w.Flush(); err != nil {
			return err
		}
		for {
			line, err := readLine(rc.r)
			if err != nil {
				return err
			}
			switch {
			case line == "END":
				return nil
			case strings.HasPrefix(line, "VALUE "):
				fields := strings.Fields(line)
				if len(fields) != 4 || fields[1] != key {
					return fmt.Errorf("plancache: malformed VALUE line %q", line)
				}
				size, err := strconv.Atoi(fields[3])
				if err != nil || size < 0 {
					return fmt.Errorf("plancache: malformed VALUE size in %q", line)
				}
				buf := make([]byte, size+2) // trailing \r\n
				if _, err := io.ReadFull(rc.r, buf); err != nil {
					return err
				}
				if buf[size] != '\r' || buf[size+1] != '\n' {
					return fmt.Errorf("plancache: VALUE body missing terminator")
				}
				value, found = buf[:size:size], true
			default:
				return fmt.Errorf("plancache: unexpected response %q to get", line)
			}
		}
	})
	if err != nil {
		r.errors.Add(1)
		return nil, false, err
	}
	if found {
		r.hits.Add(1)
	} else {
		r.misses.Add(1)
	}
	return value, found, nil
}

// Set implements Tier with the memcached "set" verb.
func (r *Remote) Set(ctx context.Context, key string, value []byte, ttl time.Duration) error {
	if err := validKey(key); err != nil {
		r.errors.Add(1)
		return err
	}
	exptime := 0
	if ttl > 0 {
		exptime = int(ttl / time.Second)
		if exptime < 1 {
			exptime = 1
		}
		// Relative expirations above 30 days are interpreted by memcached
		// as absolute unix timestamps; clamp below the threshold.
		if exptime >= 30*24*3600 {
			exptime = 30*24*3600 - 1
		}
	}
	err := r.exchange(ctx, func(rc *remoteConn) error {
		if _, err := fmt.Fprintf(rc.w, "set %s 0 %d %d\r\n", key, exptime, len(value)); err != nil {
			return err
		}
		if _, err := rc.w.Write(value); err != nil {
			return err
		}
		if _, err := rc.w.WriteString("\r\n"); err != nil {
			return err
		}
		if err := rc.w.Flush(); err != nil {
			return err
		}
		line, err := readLine(rc.r)
		if err != nil {
			return err
		}
		if line != "STORED" {
			return fmt.Errorf("plancache: set not stored: %q", line)
		}
		return nil
	})
	if err != nil {
		r.errors.Add(1)
		return err
	}
	r.sets.Add(1)
	return nil
}

// exchange runs one request/response round on a pooled connection under
// the configured deadline, recycling the connection on success and closing
// it on any failure.
func (r *Remote) exchange(ctx context.Context, fn func(*remoteConn) error) error {
	rc, err := r.acquire(ctx)
	if err != nil {
		return err
	}
	deadline := time.Now().Add(r.timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := rc.c.SetDeadline(deadline); err != nil {
		rc.c.Close()
		return err
	}
	if err := fn(rc); err != nil {
		rc.c.Close()
		return err
	}
	r.release(rc)
	return nil
}

func (r *Remote) acquire(ctx context.Context) (*remoteConn, error) {
	r.mu.Lock()
	if n := len(r.idle); n > 0 {
		rc := r.idle[n-1]
		r.idle = r.idle[:n-1]
		r.mu.Unlock()
		return rc, nil
	}
	r.mu.Unlock()
	dctx, cancel := context.WithTimeout(ctx, r.timeout)
	defer cancel()
	c, err := r.dial(dctx)
	if err != nil {
		return nil, err
	}
	return &remoteConn{c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)}, nil
}

func (r *Remote) release(rc *remoteConn) {
	r.mu.Lock()
	if !r.closed && len(r.idle) < r.maxIdle {
		r.idle = append(r.idle, rc)
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
	rc.c.Close()
}

// readLine reads one CRLF-terminated protocol line (without the CRLF).
func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return "", err
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return "", fmt.Errorf("plancache: protocol line missing CRLF: %q", line)
	}
	return line[:len(line)-2], nil
}
