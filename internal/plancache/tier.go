package plancache

import (
	"context"
	"fmt"
	"time"
)

// This file defines the shared cache tier: a byte-oriented backend behind
// the per-process Cache, letting N opassd replicas dedupe planner work
// fleet-wide. The in-process Cache stays the L1 — typed values, coalescing,
// surgical invalidation — while a Tier is the L2 consulted inside the
// singleflight compute: before running the planner the flight leader asks
// the tier for the fingerprint's serialized plan, and after a genuine
// compute it publishes the result for every other replica.
//
// Correctness is inherited from content addressing. Tier keys embed the
// same canonical-problem fingerprint the L1 uses — which covers per-chunk
// placement epochs — plus the caller's namespace (the namenode metadata
// snapshot epoch), so replicas answering from the shared tier agree on
// exactly the metadata the plan was computed against. Stale entries are
// never wrong, merely unreachable, so the tier needs no invalidation
// protocol: TTLs and backend LRU pressure collect the garbage.

// Tier is a shared byte-valued cache backend. Implementations must be safe
// for concurrent use. Errors are advisory: callers treat a failing tier as
// a miss and fall through to computing locally.
type Tier interface {
	// Get fetches the value stored under key. ok is false on a clean miss;
	// err reports backend failures (which callers should treat as misses).
	Get(ctx context.Context, key string) (value []byte, ok bool, err error)
	// Set stores value under key. ttl bounds the entry's remote lifetime;
	// <= 0 lets the backend keep it until evicted by its own pressure.
	Set(ctx context.Context, key string, value []byte, ttl time.Duration) error
}

// TierKey renders a content-addressed Key under a namespace as a key every
// Tier backend accepts (hex keeps it within memcached's 250-byte printable
// key rules for any namespace up to ~180 bytes). Namespaces version the
// keyspace: embedding the namenode metadata snapshot epoch means replicas
// whose metadata disagrees can never serve each other's plans.
func TierKey(namespace string, k Key) string {
	return fmt.Sprintf("%s:%x", namespace, k[:])
}

// MemoryTier adapts the in-process LRU machinery to the Tier interface —
// the single-replica backend, and the reference implementation the remote
// backend's tests compare against. Entry lifetime follows the tier's
// Options (MaxEntries/MaxBytes/TTL); the per-Set ttl parameter is ignored,
// since a local tier shares the process's freshness budget.
type MemoryTier struct {
	c *Cache[[]byte]
}

// NewMemoryTier creates a MemoryTier bounded by opts.
func NewMemoryTier(opts Options) *MemoryTier {
	return &MemoryTier{c: New[[]byte](opts)}
}

// Get implements Tier.
func (m *MemoryTier) Get(ctx context.Context, key string) ([]byte, bool, error) {
	v, ok := m.c.Get(KeyOf([]byte(key)))
	return v, ok, nil
}

// Set implements Tier.
func (m *MemoryTier) Set(ctx context.Context, key string, value []byte, ttl time.Duration) error {
	m.c.Put(KeyOf([]byte(key)), value, int64(len(value)))
	return nil
}

// Stats reports the underlying cache's totals.
func (m *MemoryTier) Stats() Stats { return m.c.Stats() }
