package plancache

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// tierConformance drives any Tier through the contract the httpapi layer
// relies on: set-then-get round-trips bytes exactly, absent keys miss
// cleanly, and namespaced keys are disjoint.
func tierConformance(t *testing.T, tier Tier) {
	t.Helper()
	ctx := context.Background()
	k1 := TierKey("opass:epoch1", KeyOf([]byte("problem-a")))
	k2 := TierKey("opass:epoch2", KeyOf([]byte("problem-a"))) // same fingerprint, other epoch

	if _, ok, err := tier.Get(ctx, k1); err != nil || ok {
		t.Fatalf("Get on empty tier = ok=%v err=%v, want clean miss", ok, err)
	}
	val := bytes.Repeat([]byte("plan-bytes\x00\xff"), 1000) // binary-safe, multi-KB
	if err := tier.Set(ctx, k1, val, time.Minute); err != nil {
		t.Fatalf("Set: %v", err)
	}
	got, ok, err := tier.Get(ctx, k1)
	if err != nil || !ok {
		t.Fatalf("Get after Set = ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, val) {
		t.Fatalf("round-trip corrupted value: %d bytes, want %d", len(got), len(val))
	}
	if _, ok, err := tier.Get(ctx, k2); err != nil || ok {
		t.Fatalf("other-epoch key hit (ok=%v err=%v); snapshot namespaces must be disjoint", ok, err)
	}
	// Empty value round-trips too (a legal cached payload).
	if err := tier.Set(ctx, k2, nil, 0); err != nil {
		t.Fatalf("Set empty: %v", err)
	}
	if got, ok, _ := tier.Get(ctx, k2); !ok || len(got) != 0 {
		t.Fatalf("empty value round-trip = %q ok=%v", got, ok)
	}
}

func TestMemoryTierConformance(t *testing.T) {
	tierConformance(t, NewMemoryTier(Options{MaxEntries: 16}))
}

func TestRemoteTierConformance(t *testing.T) {
	srv, err := NewMemcachedServer()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	r := NewRemote(srv.Addr(), RemoteOptions{})
	defer r.Close()
	tierConformance(t, r)
	st := r.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Sets != 2 || st.Errors != 0 {
		t.Fatalf("stats = %+v, want 2 hits / 2 misses / 2 sets / 0 errors", st)
	}
}

// TestRemoteTierTTLExpiry asserts a TTL'd entry vanishes after its
// exptime (driven through the server's test clock).
func TestRemoteTierTTLExpiry(t *testing.T) {
	srv, err := NewMemcachedServer()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := time.Now()
	now := base
	var mu sync.Mutex
	srv.now = func() time.Time { mu.Lock(); defer mu.Unlock(); return now }

	r := NewRemote(srv.Addr(), RemoteOptions{})
	defer r.Close()
	ctx := context.Background()
	if err := r.Set(ctx, "ttl-key", []byte("v"), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := r.Get(ctx, "ttl-key"); err != nil || !ok {
		t.Fatalf("fresh entry missing (ok=%v err=%v)", ok, err)
	}
	mu.Lock()
	now = base.Add(time.Minute)
	mu.Unlock()
	if _, ok, err := r.Get(ctx, "ttl-key"); err != nil || ok {
		t.Fatalf("expired entry still served (ok=%v err=%v)", ok, err)
	}
	if srv.Len() != 0 {
		t.Fatalf("server retains %d items after expiry read", srv.Len())
	}
}

// TestRemoteTierConnReuse asserts sequential exchanges share pooled
// connections instead of redialing.
func TestRemoteTierConnReuse(t *testing.T) {
	srv, err := NewMemcachedServer()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	dials := 0
	r := NewRemote(srv.Addr(), RemoteOptions{Dial: func(ctx context.Context) (net.Conn, error) {
		dials++
		var d net.Dialer
		return d.DialContext(ctx, "tcp", srv.Addr())
	}})
	defer r.Close()
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := r.Set(ctx, key, []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := r.Get(ctx, key); err != nil || !ok {
			t.Fatalf("get %s: ok=%v err=%v", key, ok, err)
		}
	}
	if dials != 1 {
		t.Fatalf("%d dials for 20 sequential exchanges, want 1", dials)
	}
}

// TestRemoteTierErrorPaths: a dead server surfaces errors (treated as
// misses upstream) and counts them; invalid keys are rejected before any
// network traffic.
func TestRemoteTierErrorPaths(t *testing.T) {
	srv, err := NewMemcachedServer()
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	srv.Close()

	r := NewRemote(addr, RemoteOptions{Timeout: 100 * time.Millisecond})
	defer r.Close()
	ctx := context.Background()
	if _, ok, err := r.Get(ctx, "k"); err == nil || ok {
		t.Fatalf("Get against dead server = ok=%v err=%v, want error", ok, err)
	}
	if err := r.Set(ctx, "k", []byte("v"), 0); err == nil {
		t.Fatal("Set against dead server succeeded")
	}
	if err := r.Set(ctx, "bad key", []byte("v"), 0); err == nil {
		t.Fatal("whitespace key accepted")
	}
	if err := r.Set(ctx, strings.Repeat("k", 251), []byte("v"), 0); err == nil {
		t.Fatal("overlong key accepted")
	}
	if st := r.Stats(); st.Errors < 4 {
		t.Fatalf("stats = %+v, want >= 4 errors", st)
	}
}

// TestRemoteTierConcurrent hammers one server from many goroutines — the
// fleet-of-replicas shape — verifying every value round-trips intact.
// Meaningful mainly under -race.
func TestRemoteTierConcurrent(t *testing.T) {
	srv, err := NewMemcachedServer()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	r := NewRemote(srv.Addr(), RemoteOptions{MaxIdleConns: 8})
	defer r.Close()

	const workers = 8
	const rounds = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < rounds; i++ {
				key := fmt.Sprintf("w%d-r%d", w, i)
				val := bytes.Repeat([]byte{byte(w), byte(i)}, 512)
				if err := r.Set(ctx, key, val, 0); err != nil {
					errs <- err
					return
				}
				got, ok, err := r.Get(ctx, key)
				if err != nil || !ok || !bytes.Equal(got, val) {
					errs <- fmt.Errorf("round-trip %s: ok=%v err=%v", key, ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if srv.Len() != workers*rounds {
		t.Fatalf("server holds %d items, want %d", srv.Len(), workers*rounds)
	}
}

// TestCacheGetPut covers the direct (non-singleflight) cache face the
// MemoryTier adapter uses: LRU refresh, TTL expiry, byte-bound eviction.
func TestCacheGetPut(t *testing.T) {
	base := time.Now()
	now := base
	c := New[string](Options{MaxEntries: 2, TTL: time.Minute, Now: func() time.Time { return now }})
	k1, k2, k3 := KeyOf([]byte("1")), KeyOf([]byte("2")), KeyOf([]byte("3"))

	if _, ok := c.Get(k1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k1, "a", 1)
	c.Put(k2, "b", 1)
	if v, ok := c.Get(k1); !ok || v != "a" {
		t.Fatalf("Get(k1) = %q ok=%v", v, ok)
	}
	c.Put(k3, "c", 1) // k2 is LRU now (k1 was refreshed by the Get)
	if _, ok := c.Get(k2); ok {
		t.Fatal("k2 survived LRU eviction")
	}
	if _, ok := c.Get(k1); !ok {
		t.Fatal("k1 evicted despite refresh")
	}
	now = base.Add(2 * time.Minute)
	if _, ok := c.Get(k1); ok {
		t.Fatal("k1 served past TTL")
	}
	if st := c.Stats(); st.Entries != 1 { // k3 remains (expired but unread)
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
}
