package plannerbench

import (
	"fmt"

	"opass/internal/core"
	"opass/internal/engine"
)

// This file holds the incremental-replanning benchmark rig: the same seeded
// single-data workload as BuildSingle, planned cold, then hit by a single
// permanent DataNode loss. The contrast pair is the engine's two answers to
// that event — a whole-backlog re-match (pre-incremental behavior) versus
// the O(delta) replan that re-matches only the tasks the crash could have
// moved. The speedup between them is the payoff the per-chunk placement
// epochs buy.

// ReplanVictim is the node every replan rig crashes. Node 1 rather than 0
// so the rig also exercises non-trivial process indices in the splice.
const ReplanVictim = 1

// ReplanRig is a planned workload frozen just after a node loss, ready for
// repeated replans of the full backlog (cold) or the affected slice
// (delta). Each Replan* call splices into a fresh copy of the cold
// backlog, so calls are independent and repeatable.
type ReplanRig struct {
	Prob  *core.Problem
	Lists [][]int        // the cold assignment's per-process dispatch lists
	Stamp core.PlanStamp // placement epochs captured before the crash
}

// BuildReplanRig builds the seeded workload at the given scale, plans it
// cold, stamps the placement, and crashes ReplanVictim — bumping the
// epochs of every chunk that lost a replica, exactly what a namenode
// processing a DataNode loss does.
func BuildReplanRig(procs int) (*ReplanRig, error) {
	p, err := BuildSingle(procs)
	if err != nil {
		return nil, err
	}
	a, err := core.SingleData{Seed: 1}.Assign(p)
	if err != nil {
		return nil, err
	}
	stamp := core.StampProblem(p)
	if _, _, err := p.FS.Crash(ReplanVictim); err != nil {
		return nil, err
	}
	return &ReplanRig{Prob: p, Lists: a.Lists, Stamp: stamp}, nil
}

// weight excludes the dead node's process from new work, as the engine's
// fault hooks do.
func (r *ReplanRig) weight(node int) float64 {
	if node == ReplanVictim {
		return 0
	}
	return 1
}

// ReplanCold re-matches the entire backlog against the post-crash
// placement — the pre-incremental baseline.
func (r *ReplanRig) ReplanCold() error {
	src := engine.NewListSource(r.Lists)
	spliced, err := engine.ReplanBacklog(r.Prob, src, make([]bool, r.Prob.NumProcs()), r.weight, 1)
	if err != nil {
		return err
	}
	if !spliced {
		return fmt.Errorf("plannerbench: cold replan spliced nothing")
	}
	return nil
}

// ReplanDelta re-matches only the tasks the crash could have moved and
// returns how many that was.
func (r *ReplanRig) ReplanDelta() (int, error) {
	src := engine.NewListSource(r.Lists)
	spliced, rematched, err := engine.ReplanBacklogDelta(
		r.Prob, src, make([]bool, r.Prob.NumProcs()), r.weight, 1, ReplanVictim, r.Stamp)
	if err != nil {
		return 0, err
	}
	if !spliced {
		return 0, fmt.Errorf("plannerbench: delta replan spliced nothing")
	}
	return rematched, nil
}
