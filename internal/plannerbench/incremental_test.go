package plannerbench

import (
	"fmt"
	"testing"
)

// TestReplanRig pins the rig's contract at every benchmark scale: both
// replans splice, and the delta replan touches only a small fraction of
// the backlog — the property that makes it worth benchmarking at all.
func TestReplanRig(t *testing.T) {
	for _, procs := range Sizes {
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			r, err := BuildReplanRig(procs)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.ReplanCold(); err != nil {
				t.Fatal(err)
			}
			rematched, err := r.ReplanDelta()
			if err != nil {
				t.Fatal(err)
			}
			total := len(r.Prob.Tasks)
			if rematched == 0 {
				t.Fatal("delta replan re-matched nothing after a crash")
			}
			if rematched*10 >= total {
				t.Fatalf("delta replan re-matched %d of %d tasks — not surgical", rematched, total)
			}
		})
	}
}

// BenchmarkReplanCold and BenchmarkReplanDelta are the incremental series:
// the same single-node-loss event answered by a whole-backlog re-match
// versus the O(delta) replan.
func BenchmarkReplanCold(b *testing.B) {
	for _, procs := range Sizes {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			r, err := BuildReplanRig(procs)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := r.ReplanCold(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReplanDelta(b *testing.B) {
	for _, procs := range Sizes {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			r, err := BuildReplanRig(procs)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.ReplanDelta(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
