// Package plannerbench holds the planner hot-path benchmark bodies shared
// by the repo-root testing.B benchmarks and the opass-bench CLI (which
// replays them through testing.Benchmark to emit BENCH_planner.json). Each
// pair of functions contrasts the pre-index implementation — O(procs ×
// tasks × inputs × replicas) CoLocatedMB probe sweeps — with the shared
// locality-index path that replaced it, so the perf trajectory records the
// speedup rather than a single opaque number.
package plannerbench

import (
	"cmp"
	"math"
	"slices"
	"sort"

	"opass/internal/bipartite"
	"opass/internal/core"
	"opass/internal/workload"
)

// Sizes are the benchmark scales: procs × (10 tasks per proc), from the
// paper's 64-node evaluation up to the §V-C2 scalability regime.
var Sizes = []int{64, 128, 256}

// TasksPerProc fixes the task density of every benchmark problem.
const TasksPerProc = 10

// BuildSingle constructs the seeded single-data problem at the given scale.
func BuildSingle(procs int) (*core.Problem, error) {
	rig, err := workload.SingleSpec{Nodes: procs, ChunksPerProc: TasksPerProc, Seed: 1}.Build()
	if err != nil {
		return nil, err
	}
	return rig.Prob, nil
}

// BuildMulti constructs the seeded 30/20/10 MB multi-data problem at the
// given scale.
func BuildMulti(procs int) (*core.Problem, error) {
	rig, err := workload.MultiSpec{Nodes: procs, TasksPerProc: TasksPerProc, Seed: 1}.Build()
	if err != nil {
		return nil, err
	}
	return rig.Prob, nil
}

// LocalityGraphProbe is the pre-index §IV-A graph build: probe every
// (process, task) pair with CoLocatedMB, each probe scanning the task's
// inputs times their replica lists.
func LocalityGraphProbe(p *core.Problem) *bipartite.Graph {
	g := bipartite.NewGraph(p.NumProcs(), len(p.Tasks))
	for t := range p.Tasks {
		for proc := 0; proc < p.NumProcs(); proc++ {
			if w := p.CoLocatedMB(proc, t); w > 0 {
				g.AddEdge(proc, t, mbRound(w))
			}
		}
	}
	return g
}

// LocalityGraphIndexed builds the same graph off the shared locality
// index, walking only the sparse edges.
func LocalityGraphIndexed(p *core.Problem) *bipartite.Graph {
	ix := core.NewLocalityIndex(p)
	g := bipartite.NewGraph(p.NumProcs(), len(p.Tasks))
	g.Reserve(ix.Degrees())
	for proc := 0; proc < p.NumProcs(); proc++ {
		for _, e := range ix.ProcEdges(proc) {
			g.AddEdge(proc, e.Task, mbRound(e.MB))
		}
	}
	return g
}

// MultiPrefsProbe is the pre-index Algorithm 1 preference-list build: an
// O(m·n) probe sweep into per-process maps, then a comparison sort against
// the map.
func MultiPrefsProbe(p *core.Problem) [][]int {
	n, m := len(p.Tasks), p.NumProcs()
	match := make([]map[int]float64, m)
	prefs := make([][]int, m)
	for proc := 0; proc < m; proc++ {
		match[proc] = make(map[int]float64)
		for t := 0; t < n; t++ {
			if w := p.CoLocatedMB(proc, t); w > 0 {
				match[proc][t] = w
				prefs[proc] = append(prefs[proc], t)
			}
		}
		mp := match[proc]
		sort.Slice(prefs[proc], func(a, b int) bool {
			ta, tb := prefs[proc][a], prefs[proc][b]
			if mp[ta] != mp[tb] {
				return mp[ta] > mp[tb]
			}
			return ta < tb
		})
	}
	return prefs
}

// MultiPrefsIndexed is the replacement: one O(edges) index inversion, then
// an independent stable sort per process (MultiData.Assign additionally
// fans these sorts out over a GOMAXPROCS pool; they run serially here so
// the measurement isolates the algorithmic win from the parallel one). The
// index build is included — it is the cost the probe sweep paid implicitly.
func MultiPrefsIndexed(p *core.Problem) [][]core.LocalityEdge {
	ix := core.NewLocalityIndex(p)
	prefs := make([][]core.LocalityEdge, p.NumProcs())
	for proc := 0; proc < p.NumProcs(); proc++ {
		es := ix.ProcEdges(proc)
		if len(es) == 0 {
			continue
		}
		own := append([]core.LocalityEdge(nil), es...)
		slices.SortStableFunc(own, func(a, b core.LocalityEdge) int { return cmp.Compare(b.MB, a.MB) })
		prefs[proc] = own
	}
	return prefs
}

// mbRound mirrors the planner's whole-MB capacity rounding.
func mbRound(w float64) int64 {
	v := int64(math.Round(w))
	if v < 1 {
		v = 1
	}
	return v
}
