// Package plot renders small ASCII charts for the bench harness: trace
// scatter plots (Figures 7c, 9, 11, 12 are I/O-time-per-operation traces),
// bar charts (Figures 1a, 8c are per-node loads), and CDF step plots
// (Figure 3). Terminal output keeps the figure regeneration dependency-free
// while still making the shapes visible at a glance.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Trace renders ys as a height x width scatter/line chart with a y-axis
// legend, in trace order (x = operation index). It is the Figure 7c style:
// one mark per operation, so contention bursts appear as vertical streaks.
func Trace(title string, ys []float64, width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 2 {
		height = 2
	}
	if len(ys) == 0 {
		return title + "\n(no data)\n"
	}
	lo, hi := bounds(ys)
	if hi-lo < 1e-6*math.Max(1, math.Abs(hi)) {
		// Near-constant series: widen the range so floating-point noise
		// does not scatter marks across rows.
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for i, y := range ys {
		c := i * width / len(ys)
		if c >= width {
			c = width - 1
		}
		r := rowOf(y, lo, hi, height)
		grid[r][c] = '*'
	}
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	for r := 0; r < height; r++ {
		label := ""
		switch r {
		case 0:
			label = fmt.Sprintf("%8.2f", hi)
		case height - 1:
			label = fmt.Sprintf("%8.2f", lo)
		default:
			label = strings.Repeat(" ", 8)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, grid[r])
	}
	fmt.Fprintf(&b, "%s +%s+\n", strings.Repeat(" ", 8), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s 0%sops=%d\n", strings.Repeat(" ", 8), strings.Repeat(" ", max(1, width-4-digits(len(ys)))), len(ys))
	return b.String()
}

// Bars renders a horizontal bar chart of per-item values (Figure 1a/8c
// style: one bar per node).
func Bars(title string, labels []string, values []float64, width int) string {
	if len(labels) != len(values) {
		panic(fmt.Sprintf("plot: %d labels for %d values", len(labels), len(values)))
	}
	if width < 8 {
		width = 8
	}
	var hi float64
	for _, v := range values {
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for i, v := range values {
		n := 0
		if hi > 0 {
			n = int(math.Round(v / hi * float64(width)))
		}
		fmt.Fprintf(&b, "%-*s |%s%s %.0f\n", labelW, labels[i],
			strings.Repeat("#", n), strings.Repeat(" ", width-n), v)
	}
	return b.String()
}

// CDF renders step functions (Figure 3 style): one line per named series,
// sampled at each integer k in [0, len(series)-1].
func CDF(title string, names []string, series [][]float64, width, height int) string {
	if len(names) != len(series) {
		panic(fmt.Sprintf("plot: %d names for %d series", len(names), len(series)))
	}
	if width < 8 {
		width = 8
	}
	if height < 2 {
		height = 2
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	marks := "abcdefghij"
	for si, ys := range series {
		if len(ys) == 0 {
			continue
		}
		m := marks[si%len(marks)]
		for i, y := range ys {
			c := i * width / len(ys)
			if c >= width {
				c = width - 1
			}
			if y < 0 {
				y = 0
			}
			if y > 1 {
				y = 1
			}
			r := rowOf(y, 0, 1, height)
			grid[r][c] = m
		}
	}
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", 4)
		switch r {
		case 0:
			label = " 1.0"
		case height - 1:
			label = " 0.0"
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, grid[r])
	}
	fmt.Fprintf(&b, "%s +%s+\n", strings.Repeat(" ", 4), strings.Repeat("-", width))
	for si, name := range names {
		fmt.Fprintf(&b, "     %c = %s\n", marks[si%len(marks)], name)
	}
	return b.String()
}

// Sparkline renders values as a one-line block-character sparkline.
func Sparkline(ys []float64) string {
	if len(ys) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := bounds(ys)
	var b strings.Builder
	for _, y := range ys {
		i := 0
		if hi > lo {
			i = int((y - lo) / (hi - lo) * float64(len(blocks)-1))
		}
		if i < 0 {
			i = 0
		}
		if i >= len(blocks) {
			i = len(blocks) - 1
		}
		b.WriteRune(blocks[i])
	}
	return b.String()
}

func rowOf(y, lo, hi float64, height int) int {
	frac := (y - lo) / (hi - lo)
	r := int(math.Round((1 - frac) * float64(height-1)))
	if r < 0 {
		r = 0
	}
	if r >= height {
		r = height - 1
	}
	return r
}

func bounds(ys []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, y := range ys {
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	return lo, hi
}

func digits(n int) int {
	d := 1
	for n >= 10 {
		n /= 10
		d++
	}
	return d
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
