package plot

import (
	"strings"
	"testing"
)

func TestTraceBasicShape(t *testing.T) {
	ys := []float64{1, 2, 3, 4, 5, 4, 3, 2, 1}
	out := Trace("title", ys, 20, 5)
	if !strings.HasPrefix(out, "title\n") {
		t.Fatal("missing title")
	}
	lines := strings.Split(out, "\n")
	// title + 5 rows + axis + footer + trailing empty
	if len(lines) != 9 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.Contains(lines[1], "5.00") {
		t.Fatalf("top label missing max: %q", lines[1])
	}
	if !strings.Contains(lines[5], "1.00") {
		t.Fatalf("bottom label missing min: %q", lines[5])
	}
	if !strings.Contains(out, "*") {
		t.Fatal("no marks plotted")
	}
	if !strings.Contains(out, "ops=9") {
		t.Fatal("missing ops count")
	}
}

func TestTraceEmptyAndConstant(t *testing.T) {
	if out := Trace("t", nil, 10, 4); !strings.Contains(out, "no data") {
		t.Fatalf("empty trace: %q", out)
	}
	out := Trace("t", []float64{2, 2, 2}, 10, 4)
	if !strings.Contains(out, "*") {
		t.Fatal("constant series should still plot")
	}
}

func TestTraceClampsTinyDimensions(t *testing.T) {
	out := Trace("t", []float64{1, 2}, 1, 1)
	if out == "" {
		t.Fatal("degenerate dimensions must still render")
	}
}

func TestBars(t *testing.T) {
	out := Bars("loads", []string{"n0", "n1", "n2"}, []float64{10, 5, 0}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[1], strings.Repeat("#", 10)) {
		t.Fatalf("max bar not full width: %q", lines[1])
	}
	if strings.Contains(lines[3], "#") {
		t.Fatalf("zero bar must be empty: %q", lines[3])
	}
}

func TestBarsPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Bars("x", []string{"a"}, []float64{1, 2}, 10)
}

func TestBarsAllZero(t *testing.T) {
	out := Bars("z", []string{"a", "b"}, []float64{0, 0}, 10)
	if strings.Contains(out, "#") {
		t.Fatal("all-zero bars must render empty")
	}
}

func TestCDF(t *testing.T) {
	s1 := []float64{0, 0.5, 1}
	s2 := []float64{0, 0.2, 0.4}
	out := CDF("cdf", []string{"m=64", "m=128"}, [][]float64{s1, s2}, 20, 6)
	if !strings.Contains(out, "a = m=64") || !strings.Contains(out, "b = m=128") {
		t.Fatalf("legend missing: %q", out)
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Fatal("marks missing")
	}
	if !strings.Contains(out, " 1.0") || !strings.Contains(out, " 0.0") {
		t.Fatal("axis labels missing")
	}
}

func TestCDFClampsOutOfRange(t *testing.T) {
	out := CDF("c", []string{"x"}, [][]float64{{-0.5, 2.0}}, 10, 4)
	if out == "" {
		t.Fatal("out-of-range values must clamp, not vanish")
	}
}

func TestCDFPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CDF("c", []string{"one"}, nil, 10, 4)
}

func TestSparkline(t *testing.T) {
	out := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(out)) != 4 {
		t.Fatalf("sparkline length %d, want 4", len([]rune(out)))
	}
	runes := []rune(out)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Fatalf("sparkline extremes wrong: %q", out)
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline must be empty")
	}
	if got := Sparkline([]float64{5, 5}); []rune(got)[0] != '▁' {
		t.Fatalf("constant sparkline: %q", got)
	}
}
