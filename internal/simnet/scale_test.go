package simnet

import (
	"math"
	"testing"
)

// A degraded resource slows an in-flight transfer from the instant the
// scale changes, and restoring it speeds the transfer back up.
func TestSetScaleChangesRatesMidFlight(t *testing.T) {
	n := New()
	disk := n.AddResource("disk", 100, 0)
	n.Start([]ResourceID{disk}, 100, 0, "xfer") // 1s at full speed

	// Run the first half at full speed.
	if !n.RunUntil(0.5) {
		t.Fatal("flow finished early")
	}
	// Degrade to 10%: the remaining 50 MB now move at 10 MB/s => 5s more.
	n.SetScale(disk, 0.1)
	var end float64
	n.OnComplete(func(now float64, f *Flow) { end = now })
	n.Run()
	if math.Abs(end-5.5) > 1e-6 {
		t.Fatalf("degraded completion at %v, want 5.5", end)
	}
	if got := n.Scale(disk); got != 0.1 {
		t.Fatalf("Scale = %v, want 0.1", got)
	}

	// Restore and run a fresh transfer at nominal speed.
	n.SetScale(disk, 1)
	n.Start([]ResourceID{disk}, 100, 0, "xfer2")
	n.Run()
	if math.Abs(end-6.5) > 1e-6 {
		t.Fatalf("restored completion at %v, want 6.5", end)
	}
}

// The seek penalty compounds with the scale: k contended streams on a
// degraded disk share scale*capacity/(1+alpha*(k-1)).
func TestSetScaleComposesWithSeekPenalty(t *testing.T) {
	n := New()
	disk := n.AddResource("disk", 100, 1) // alpha=1: 2 streams halve throughput
	n.SetScale(disk, 0.5)
	n.Start([]ResourceID{disk}, 25, 0, "a")
	n.Start([]ResourceID{disk}, 25, 0, "b")
	// Aggregate = 0.5*100/(1+1) = 25 MB/s, 12.5 each => both end at t=2.
	var last float64
	n.OnComplete(func(now float64, f *Flow) { last = now })
	n.Run()
	if math.Abs(last-2) > 1e-6 {
		t.Fatalf("contended degraded completion at %v, want 2", last)
	}
}

func TestSetScaleRejectsNonPositive(t *testing.T) {
	n := New()
	disk := n.AddResource("disk", 100, 0)
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SetScale(%v) did not panic", bad)
				}
			}()
			n.SetScale(disk, bad)
		}()
	}
}
