// Package simnet implements a deterministic fluid-flow simulator for shared
// cluster resources (disks and network interfaces).
//
// The simulator models data transfers as fluid flows over a path of
// resources. At any instant every active flow receives a max-min fair share
// of the capacity of each resource on its path; the flow's transfer rate is
// the minimum share along the path (its bottleneck). Whenever the set of
// active flows changes, rates are recomputed, so the simulation advances as
// a sequence of piecewise-constant-rate intervals — the standard fluid
// approximation used in network and storage simulators.
//
// Disks additionally model head-seek interference: when k flows read a disk
// concurrently, the disk's aggregate bandwidth degrades to
//
//	capacity / (1 + alpha*(k-1))
//
// which captures the super-linear slowdown the Opass paper attributes to
// "read requests from different processes competing for the hard disk head".
// Setting alpha to zero yields an ideal fair-shared resource.
//
// Flows may carry a startup delay (seek + RPC latency) during which they
// consume no bandwidth, and flows of size zero act as pure timers, which the
// execution engine uses to model compute phases.
//
// All state is driven by a virtual clock; nothing here depends on wall time,
// so runs are exactly reproducible.
package simnet

import (
	"fmt"
	"math"
	"sort"
)

// ResourceID names a resource registered with a Network.
type ResourceID int

// FlowID names a flow started on a Network.
type FlowID int

// Resource is a capacity-limited component such as a disk or a NIC
// direction. Capacity is in MB/s. SeekPenalty is the per-extra-stream
// degradation factor alpha described in the package comment; it is zero for
// resources that share ideally (network links).
type Resource struct {
	Name        string
	Capacity    float64
	SeekPenalty float64
}

// Flow is one in-flight transfer. Flows are created by Network.Start and
// owned by the Network; callers receive the pointer in completion callbacks
// and must not mutate it.
type Flow struct {
	ID    FlowID
	Label string
	Path  []ResourceID // resources traversed; empty for pure timers
	Size  float64      // MB to transfer
	Delay float64      // startup latency in seconds

	Start float64 // virtual time the flow was started
	End   float64 // virtual time the flow completed (set on completion)

	remaining float64
	delayLeft float64
	rate      float64
}

// Remaining reports the MB still to transfer.
func (f *Flow) Remaining() float64 { return f.remaining }

// Rate reports the flow's current transfer rate in MB/s. It is zero while
// the flow is in its startup-delay phase.
func (f *Flow) Rate() float64 { return f.rate }

// CompletionHandler is invoked by Run whenever a flow finishes. The handler
// runs with the clock at the completion instant and may start new flows.
type CompletionHandler func(now float64, f *Flow)

// Network is a set of resources and the flows sharing them. The zero value
// is not usable; use New.
type Network struct {
	resources []Resource
	flows     map[FlowID]*Flow
	order     []FlowID // deterministic iteration order of active flows
	nextID    FlowID
	now       float64
	onDone    CompletionHandler
	dirty     bool // rates need recomputation

	// scales[i] multiplies resources[i].Capacity; 1 for a healthy resource.
	// Degraded-node fault injection lowers it (a sick disk or flapping NIC
	// delivering a fraction of nominal throughput).
	scales []float64

	// scratch buffers reused across rate computations
	load    []int
	remCap  []float64
	cnt     []int
	started int64
	done    int64

	// workMB accumulates megabytes moved through each resource — the raw
	// material of utilization metrics (how busy each disk/NIC was).
	workMB []float64
}

// timeEpsilon bounds the smallest interval the simulator will advance; it
// absorbs floating-point residue when many flows finish together.
const timeEpsilon = 1e-9

// sizeEpsilon is the residual transfer size treated as complete.
const sizeEpsilon = 1e-9

// New returns an empty Network with its clock at zero.
func New() *Network {
	return &Network{flows: make(map[FlowID]*Flow)}
}

// AddResource registers a resource and returns its ID. Capacity must be
// positive and seekPenalty non-negative.
func (n *Network) AddResource(name string, capacity, seekPenalty float64) ResourceID {
	if capacity <= 0 {
		panic(fmt.Sprintf("simnet: resource %q capacity %v must be positive", name, capacity))
	}
	if seekPenalty < 0 {
		panic(fmt.Sprintf("simnet: resource %q seek penalty %v must be non-negative", name, seekPenalty))
	}
	n.resources = append(n.resources, Resource{Name: name, Capacity: capacity, SeekPenalty: seekPenalty})
	n.growScratch()
	return ResourceID(len(n.resources) - 1)
}

func (n *Network) growScratch() {
	for len(n.load) < len(n.resources) {
		n.load = append(n.load, 0)
		n.remCap = append(n.remCap, 0)
		n.cnt = append(n.cnt, 0)
		n.workMB = append(n.workMB, 0)
		n.scales = append(n.scales, 1)
	}
}

// SetScale sets the capacity multiplier of resource id: a degraded device
// delivers scale × its nominal bandwidth until restored with scale 1. The
// multiplier must be positive. Rates are recomputed at the next event, so
// in-flight transfers slow down (or speed up) from the current instant on —
// the fluid-model analogue of a device losing throughput mid-transfer.
// Nominal Capacity, and with it Utilization's denominator, is unchanged, so
// a degraded disk correctly reports low utilization of its rated bandwidth.
func (n *Network) SetScale(id ResourceID, scale float64) {
	if scale <= 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		panic(fmt.Sprintf("simnet: resource %q scale %v must be positive and finite", n.resources[int(id)].Name, scale))
	}
	n.scales[int(id)] = scale
	n.dirty = true
}

// Scale reports the current capacity multiplier of resource id.
func (n *Network) Scale(id ResourceID) float64 { return n.scales[int(id)] }

// WorkMB reports the megabytes that have moved through resource id so far.
func (n *Network) WorkMB(id ResourceID) float64 {
	return n.workMB[int(id)]
}

// Utilization reports the fraction of resource id's capacity used over the
// window [since, Now()]: work done divided by capacity times elapsed time.
// It returns 0 for an empty window.
func (n *Network) Utilization(id ResourceID, since float64) float64 {
	elapsed := n.now - since
	if elapsed <= 0 {
		return 0
	}
	return n.workMB[int(id)] / (n.resources[int(id)].Capacity * elapsed)
}

// Resource returns the definition of id.
func (n *Network) Resource(id ResourceID) Resource {
	return n.resources[int(id)]
}

// NumResources reports how many resources are registered.
func (n *Network) NumResources() int { return len(n.resources) }

// Now reports the current virtual time in seconds.
func (n *Network) Now() float64 { return n.now }

// Started reports the total number of flows ever started.
func (n *Network) Started() int64 { return n.started }

// Completed reports the total number of flows that have finished.
func (n *Network) Completed() int64 { return n.done }

// Active reports the number of in-flight flows.
func (n *Network) Active() int { return len(n.flows) }

// OnComplete installs the completion handler. It must be set before Run if
// the caller needs completion events; it may be nil.
func (n *Network) OnComplete(h CompletionHandler) { n.onDone = h }

// Start launches a flow over path transferring sizeMB megabytes after a
// startup delay of delay seconds. A nil or empty path with sizeMB==0 acts as
// a pure timer that fires after delay. It returns the new flow's ID.
func (n *Network) Start(path []ResourceID, sizeMB, delay float64, label string) FlowID {
	if sizeMB < 0 {
		panic(fmt.Sprintf("simnet: flow %q size %v must be non-negative", label, sizeMB))
	}
	if delay < 0 {
		panic(fmt.Sprintf("simnet: flow %q delay %v must be non-negative", label, delay))
	}
	if sizeMB > 0 && len(path) == 0 {
		panic(fmt.Sprintf("simnet: flow %q transfers data but has no path", label))
	}
	for _, r := range path {
		if int(r) < 0 || int(r) >= len(n.resources) {
			panic(fmt.Sprintf("simnet: flow %q references unknown resource %d", label, r))
		}
	}
	id := n.nextID
	n.nextID++
	f := &Flow{
		ID:        id,
		Label:     label,
		Path:      append([]ResourceID(nil), path...),
		Size:      sizeMB,
		Delay:     delay,
		Start:     n.now,
		remaining: sizeMB,
		delayLeft: delay,
	}
	n.flows[id] = f
	n.order = append(n.order, id)
	n.started++
	n.dirty = true
	return id
}

// recomputeRates assigns every transferring flow its max-min fair rate.
func (n *Network) recomputeRates() {
	n.dirty = false
	// Count transferring flows per resource to derive effective capacities.
	for i := range n.resources {
		n.load[i] = 0
	}
	transferring := 0
	for _, id := range n.order {
		f := n.flows[id]
		if f == nil || f.delayLeft > 0 || f.remaining <= 0 {
			continue
		}
		transferring++
		for _, r := range f.Path {
			n.load[int(r)]++
		}
	}
	if transferring == 0 {
		return
	}
	for i, r := range n.resources {
		k := n.load[i]
		n.cnt[i] = k
		effective := r.Capacity * n.scales[i]
		if k == 0 {
			n.remCap[i] = effective
			continue
		}
		n.remCap[i] = effective / (1 + r.SeekPenalty*float64(k-1))
	}
	// Progressive filling: repeatedly saturate the tightest resource.
	frozen := make(map[FlowID]bool, transferring)
	for left := transferring; left > 0; {
		// Find the bottleneck resource: smallest per-flow fair share.
		best := -1
		bestShare := math.Inf(1)
		for i := range n.resources {
			if n.cnt[i] == 0 {
				continue
			}
			share := n.remCap[i] / float64(n.cnt[i])
			if share < bestShare {
				bestShare = share
				best = i
			}
		}
		if best < 0 {
			// No flow traverses any resource; all remaining flows are
			// unconstrained, which cannot happen because transferring flows
			// must have non-empty paths.
			panic("simnet: unconstrained transferring flow")
		}
		// Freeze every unfrozen flow crossing the bottleneck at the share.
		for _, id := range n.order {
			f := n.flows[id]
			if f == nil || frozen[f.ID] || f.delayLeft > 0 || f.remaining <= 0 {
				continue
			}
			crosses := false
			for _, r := range f.Path {
				if int(r) == best {
					crosses = true
					break
				}
			}
			if !crosses {
				continue
			}
			frozen[f.ID] = true
			f.rate = bestShare
			left--
			for _, r := range f.Path {
				i := int(r)
				n.remCap[i] -= bestShare
				if n.remCap[i] < 0 {
					n.remCap[i] = 0
				}
				n.cnt[i]--
			}
		}
	}
}

// nextEvent returns the time until the earliest delay expiry or flow
// completion, or +Inf when no flows are active.
func (n *Network) nextEvent() float64 {
	dt := math.Inf(1)
	for _, id := range n.order {
		f := n.flows[id]
		if f == nil {
			continue
		}
		if f.delayLeft > 0 {
			if f.delayLeft < dt {
				dt = f.delayLeft
			}
			continue
		}
		if f.remaining <= sizeEpsilon {
			dt = 0
			continue
		}
		if f.rate > 0 {
			if t := f.remaining / f.rate; t < dt {
				dt = t
			}
		}
	}
	return dt
}

// Step advances the simulation by exactly one event (the earliest delay
// expiry or completion), invoking the completion handler for every flow that
// finishes at that instant. It reports whether any flows remain active.
func (n *Network) Step() bool {
	if len(n.flows) == 0 {
		return false
	}
	if n.dirty {
		n.recomputeRates()
	}
	dt := n.nextEvent()
	if math.IsInf(dt, 1) {
		// Active flows exist but none can make progress: a stall would loop
		// forever, so fail loudly.
		panic("simnet: deadlock — active flows cannot progress")
	}
	if dt < 0 {
		dt = 0
	}
	n.advance(dt)
	n.completeFinished()
	return len(n.flows) > 0
}

// advance moves the clock forward by dt, draining delays and transfers.
func (n *Network) advance(dt float64) {
	n.now += dt
	for _, id := range n.order {
		f := n.flows[id]
		if f == nil {
			continue
		}
		if f.delayLeft > 0 {
			f.delayLeft -= dt
			if f.delayLeft <= timeEpsilon {
				f.delayLeft = 0
				n.dirty = true // flow begins transferring (or completes if empty)
			}
			continue
		}
		if f.rate > 0 {
			f.remaining -= f.rate * dt
			moved := f.rate * dt
			for _, r := range f.Path {
				n.workMB[int(r)] += moved
			}
		}
	}
}

// completeFinished retires every flow that has no delay and no data left,
// invoking the completion handler. Handlers may start new flows.
func (n *Network) completeFinished() {
	var finished []*Flow
	for _, id := range n.order {
		f := n.flows[id]
		if f == nil || f.delayLeft > 0 {
			continue
		}
		if f.remaining <= sizeEpsilon {
			f.remaining = 0
			f.rate = 0
			f.End = n.now
			finished = append(finished, f)
		}
	}
	if len(finished) == 0 {
		return
	}
	sort.Slice(finished, func(i, j int) bool { return finished[i].ID < finished[j].ID })
	for _, f := range finished {
		delete(n.flows, f.ID)
		n.done++
	}
	n.compactOrder()
	n.dirty = true
	if n.onDone != nil {
		for _, f := range finished {
			n.onDone(n.now, f)
		}
	}
}

// compactOrder drops retired IDs from the iteration order.
func (n *Network) compactOrder() {
	keep := n.order[:0]
	for _, id := range n.order {
		if _, ok := n.flows[id]; ok {
			keep = append(keep, id)
		}
	}
	n.order = keep
}

// Cancel aborts an in-flight flow: it is removed immediately, no completion
// handler fires, and its bandwidth is redistributed at the next event. It
// reports the megabytes that remained untransferred, or -1 when the flow is
// not active (already completed or cancelled). Used to model failures —
// a crashed serving node tears down its transfers mid-flight.
func (n *Network) Cancel(id FlowID) float64 {
	f, ok := n.flows[id]
	if !ok {
		return -1
	}
	delete(n.flows, id)
	n.compactOrder()
	n.dirty = true
	return f.remaining
}

// Run advances the simulation until no flows remain (including flows started
// by completion handlers). It returns the final virtual time.
func (n *Network) Run() float64 {
	for n.Step() {
	}
	return n.now
}

// StepN advances the simulation by up to budget events, stopping early when
// no flows remain. It reports whether flows remain — the budgeted drain
// slice cooperative cancellation runs on: callers interleave StepN with
// cancellation checks instead of an uninterruptible Run. A non-positive
// budget advances nothing and just reports activity.
func (n *Network) StepN(budget int) bool {
	for i := 0; i < budget; i++ {
		if !n.Step() {
			return false
		}
	}
	return len(n.flows) > 0
}

// RunUntil advances the simulation until the clock reaches deadline or no
// flows remain, whichever comes first. It reports whether flows remain.
func (n *Network) RunUntil(deadline float64) bool {
	for len(n.flows) > 0 && n.now < deadline {
		if n.dirty {
			n.recomputeRates()
		}
		dt := n.nextEvent()
		if math.IsInf(dt, 1) {
			panic("simnet: deadlock — active flows cannot progress")
		}
		if n.now+dt > deadline {
			n.advance(deadline - n.now)
			return true
		}
		n.advance(dt)
		n.completeFinished()
	}
	return len(n.flows) > 0
}
