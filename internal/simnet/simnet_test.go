package simnet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSingleFlowUncontended(t *testing.T) {
	n := New()
	disk := n.AddResource("disk", 100, 0)
	n.Start([]ResourceID{disk}, 50, 0.5, "read")
	end := n.Run()
	// 0.5 s delay + 50 MB at 100 MB/s = 1.0 s total.
	if !almostEqual(end, 1.0, 1e-6) {
		t.Fatalf("end = %v, want 1.0", end)
	}
}

func TestPureTimer(t *testing.T) {
	n := New()
	var fired float64 = -1
	n.OnComplete(func(now float64, f *Flow) { fired = now })
	n.Start(nil, 0, 2.5, "compute")
	end := n.Run()
	if !almostEqual(end, 2.5, 1e-9) || !almostEqual(fired, 2.5, 1e-9) {
		t.Fatalf("end=%v fired=%v, want 2.5", end, fired)
	}
}

func TestTwoFlowsShareIdeally(t *testing.T) {
	n := New()
	disk := n.AddResource("disk", 100, 0)
	n.Start([]ResourceID{disk}, 100, 0, "a")
	n.Start([]ResourceID{disk}, 100, 0, "b")
	end := n.Run()
	// Two equal flows share 100 MB/s: each runs at 50 MB/s, both finish at 2 s.
	if !almostEqual(end, 2.0, 1e-6) {
		t.Fatalf("end = %v, want 2.0", end)
	}
}

func TestUnequalFlowsWorkConserving(t *testing.T) {
	n := New()
	disk := n.AddResource("disk", 100, 0)
	var ends []float64
	n.OnComplete(func(now float64, f *Flow) { ends = append(ends, now) })
	n.Start([]ResourceID{disk}, 50, 0, "small")
	n.Start([]ResourceID{disk}, 150, 0, "big")
	n.Run()
	// Both at 50 MB/s until small finishes at t=1 (50 MB each transferred);
	// big then gets the full 100 MB/s for its remaining 100 MB: ends at t=2.
	if len(ends) != 2 || !almostEqual(ends[0], 1.0, 1e-6) || !almostEqual(ends[1], 2.0, 1e-6) {
		t.Fatalf("ends = %v, want [1.0 2.0]", ends)
	}
}

func TestSeekPenaltyDegradesAggregate(t *testing.T) {
	n := New()
	// alpha = 0.5: with 2 streams the aggregate is 100/1.5 = 66.67 MB/s.
	disk := n.AddResource("disk", 100, 0.5)
	n.Start([]ResourceID{disk}, 100, 0, "a")
	n.Start([]ResourceID{disk}, 100, 0, "b")
	end := n.Run()
	want := 200.0 / (100.0 / 1.5)
	if !almostEqual(end, want, 1e-6) {
		t.Fatalf("end = %v, want %v", end, want)
	}
}

func TestSeekPenaltySingleStreamUnaffected(t *testing.T) {
	n := New()
	disk := n.AddResource("disk", 100, 0.5)
	n.Start([]ResourceID{disk}, 100, 0, "solo")
	end := n.Run()
	if !almostEqual(end, 1.0, 1e-6) {
		t.Fatalf("end = %v, want 1.0 (no penalty for k=1)", end)
	}
}

func TestMaxMinBottleneck(t *testing.T) {
	// Classic max-min example: flows A and B share link1 (cap 100); flow B
	// also crosses link2 (cap 30). B is bottlenecked at 30; A gets 70.
	n := New()
	l1 := n.AddResource("l1", 100, 0)
	l2 := n.AddResource("l2", 30, 0)
	ends := map[string]float64{}
	n.OnComplete(func(now float64, f *Flow) { ends[f.Label] = now })
	n.Start([]ResourceID{l1}, 70, 0, "A")
	n.Start([]ResourceID{l1, l2}, 30, 0, "B")
	n.Run()
	if !almostEqual(ends["A"], 1.0, 1e-6) || !almostEqual(ends["B"], 1.0, 1e-6) {
		t.Fatalf("ends = %v, want both 1.0", ends)
	}
}

func TestRemotePathMinOfResources(t *testing.T) {
	// A remote read crosses disk (75) and two NIC directions (117 each):
	// uncontended rate is min = 75 MB/s.
	n := New()
	disk := n.AddResource("disk", 75, 0)
	tx := n.AddResource("tx", 117, 0)
	rx := n.AddResource("rx", 117, 0)
	n.Start([]ResourceID{disk, tx, rx}, 75, 0, "remote")
	end := n.Run()
	if !almostEqual(end, 1.0, 1e-6) {
		t.Fatalf("end = %v, want 1.0", end)
	}
}

func TestDelayDefersBandwidthUse(t *testing.T) {
	n := New()
	disk := n.AddResource("disk", 100, 0)
	ends := map[string]float64{}
	n.OnComplete(func(now float64, f *Flow) { ends[f.Label] = now })
	n.Start([]ResourceID{disk}, 100, 0, "eager")
	n.Start([]ResourceID{disk}, 100, 1.0, "late")
	n.Run()
	// eager runs alone for 1 s (100 MB done? no: 100 MB at 100 MB/s would
	// finish exactly at 1.0 s, just as late starts).
	if !almostEqual(ends["eager"], 1.0, 1e-6) {
		t.Fatalf("eager end = %v, want 1.0", ends["eager"])
	}
	if !almostEqual(ends["late"], 2.0, 1e-6) {
		t.Fatalf("late end = %v, want 2.0", ends["late"])
	}
}

func TestCompletionHandlerChainsFlows(t *testing.T) {
	// Sequential reads: each completion starts the next, like a process
	// reading its chunk list one at a time.
	n := New()
	disk := n.AddResource("disk", 100, 0)
	remaining := 4
	n.OnComplete(func(now float64, f *Flow) {
		remaining--
		if remaining > 0 {
			n.Start([]ResourceID{disk}, 100, 0, "next")
		}
	})
	n.Start([]ResourceID{disk}, 100, 0, "first")
	end := n.Run()
	if !almostEqual(end, 4.0, 1e-6) {
		t.Fatalf("end = %v, want 4.0", end)
	}
	if n.Completed() != 4 {
		t.Fatalf("completed = %d, want 4", n.Completed())
	}
}

func TestRunUntilPausesMidFlow(t *testing.T) {
	n := New()
	disk := n.AddResource("disk", 100, 0)
	id := n.Start([]ResourceID{disk}, 100, 0, "slow")
	_ = id
	active := n.RunUntil(0.5)
	if !active {
		t.Fatal("flow should still be active at t=0.5")
	}
	if !almostEqual(n.Now(), 0.5, 1e-9) {
		t.Fatalf("now = %v, want 0.5", n.Now())
	}
	end := n.Run()
	if !almostEqual(end, 1.0, 1e-6) {
		t.Fatalf("end = %v, want 1.0", end)
	}
}

func TestStartPanicsOnBadArgs(t *testing.T) {
	cases := []func(n *Network, r ResourceID){
		func(n *Network, r ResourceID) { n.Start([]ResourceID{r}, -1, 0, "neg size") },
		func(n *Network, r ResourceID) { n.Start([]ResourceID{r}, 1, -1, "neg delay") },
		func(n *Network, r ResourceID) { n.Start(nil, 1, 0, "no path") },
		func(n *Network, r ResourceID) { n.Start([]ResourceID{99}, 1, 0, "bad resource") },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			n := New()
			r := n.AddResource("disk", 100, 0)
			fn(n, r)
		}()
	}
}

func TestAddResourcePanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero capacity")
		}
	}()
	New().AddResource("bad", 0, 0)
}

// TestPropertyAllFlowsComplete drives random workloads through the simulator
// and checks global invariants: every flow completes, completion times are at
// least the uncontended lower bound, and total simulated time is at least
// the aggregate-work lower bound of the most loaded resource.
func TestPropertyAllFlowsComplete(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := New()
		numRes := 1 + rng.Intn(5)
		caps := make([]float64, numRes)
		ids := make([]ResourceID, numRes)
		for i := range ids {
			caps[i] = 10 + rng.Float64()*200
			ids[i] = n.AddResource("r", caps[i], rng.Float64()*0.3)
		}
		numFlows := 1 + rng.Intn(20)
		type spec struct {
			size, delay float64
			path        []ResourceID
		}
		specs := make([]spec, numFlows)
		work := make([]float64, numRes)
		for i := range specs {
			pl := 1 + rng.Intn(numRes)
			perm := rng.Perm(numRes)[:pl]
			path := make([]ResourceID, pl)
			for j, p := range perm {
				path[j] = ids[p]
			}
			s := spec{size: rng.Float64() * 100, delay: rng.Float64()}
			s.path = path
			specs[i] = s
			for _, p := range perm {
				work[p] += s.size
			}
		}
		var lower float64
		for i := range work {
			if lb := work[i] / caps[i]; lb > lower {
				lower = lb
			}
		}
		completions := 0
		n.OnComplete(func(now float64, f *Flow) {
			completions++
			// A flow can never beat its uncontended time.
			minTime := f.Delay + f.Size/maxCap(n, f.Path)
			if now-f.Start < minTime-1e-6 {
				t.Errorf("seed %d: flow finished faster than physics allows: %v < %v", seed, now-f.Start, minTime)
			}
		})
		for _, s := range specs {
			n.Start(s.path, s.size, s.delay, "f")
		}
		end := n.Run()
		if completions != numFlows {
			t.Errorf("seed %d: %d/%d flows completed", seed, completions, numFlows)
			return false
		}
		// Aggregate work through the busiest resource bounds the makespan
		// from below (ignoring delays, which only add time).
		if end < lower-1e-6 {
			t.Errorf("seed %d: end %v below work-conservation bound %v", seed, end, lower)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func maxCap(n *Network, path []ResourceID) float64 {
	m := math.Inf(1)
	for _, r := range path {
		if c := n.Resource(r).Capacity; c < m {
			m = c
		}
	}
	return m
}

// TestPropertyRatesRespectCapacity inspects instantaneous rates mid-run.
func TestPropertyRatesRespectCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := New()
	numRes := 4
	ids := make([]ResourceID, numRes)
	alphas := []float64{0, 0.1, 0.2, 0.3}
	for i := range ids {
		ids[i] = n.AddResource("r", 100, alphas[i])
	}
	flows := make([]FlowID, 0, 30)
	for i := 0; i < 30; i++ {
		pl := 1 + rng.Intn(numRes)
		perm := rng.Perm(numRes)[:pl]
		path := make([]ResourceID, pl)
		for j, p := range perm {
			path[j] = ids[p]
		}
		flows = append(flows, n.Start(path, 50+rng.Float64()*100, 0, "f"))
	}
	n.recomputeRates()
	// Sum of rates through each resource must not exceed its effective
	// capacity, and every transferring flow must have a positive rate.
	sum := make([]float64, numRes)
	cnt := make([]int, numRes)
	for _, id := range flows {
		f := n.flows[id]
		if f.rate <= 0 {
			t.Fatalf("flow %d has non-positive rate %v", id, f.rate)
		}
		for _, r := range f.Path {
			sum[int(r)] += f.rate
			cnt[int(r)]++
		}
	}
	for i := range sum {
		if cnt[i] == 0 {
			continue
		}
		eff := 100.0 / (1 + alphas[i]*float64(cnt[i]-1))
		if sum[i] > eff+1e-6 {
			t.Fatalf("resource %d oversubscribed: %v > %v", i, sum[i], eff)
		}
	}
}

// TestDeterminism runs the same workload twice and demands identical output.
func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		rng := rand.New(rand.NewSource(42))
		n := New()
		ids := []ResourceID{
			n.AddResource("a", 80, 0.1),
			n.AddResource("b", 120, 0),
		}
		var ends []float64
		n.OnComplete(func(now float64, f *Flow) { ends = append(ends, now) })
		for i := 0; i < 25; i++ {
			path := []ResourceID{ids[rng.Intn(2)]}
			if rng.Intn(2) == 0 {
				path = append(path, ids[(int(path[0])+1)%2])
			}
			n.Start(path, rng.Float64()*64, rng.Float64()*0.05, "f")
		}
		n.Run()
		return ends
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different completion counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at completion %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCancelRedistributesBandwidth(t *testing.T) {
	n := New()
	disk := n.AddResource("disk", 100, 0)
	a := n.Start([]ResourceID{disk}, 100, 0, "victim")
	n.Start([]ResourceID{disk}, 100, 0, "survivor")
	// Run to t=0.5: both at 50 MB/s have moved 25 MB, 75 MB left each.
	n.RunUntil(0.5)
	left := n.Cancel(a)
	if !almostEqual(left, 75, 1e-6) {
		t.Fatalf("cancelled remaining = %v, want 75", left)
	}
	end := n.Run()
	// Survivor's remaining 75 MB now runs at full 100 MB/s: ends at 1.25.
	if !almostEqual(end, 1.25, 1e-6) {
		t.Fatalf("end = %v, want 1.25", end)
	}
	if n.Completed() != 1 {
		t.Fatalf("completed = %d, want 1 (victim must not complete)", n.Completed())
	}
}

func TestCancelUnknownFlow(t *testing.T) {
	n := New()
	if got := n.Cancel(FlowID(42)); got != -1 {
		t.Fatalf("cancel of unknown flow = %v, want -1", got)
	}
}

func TestCancelDoesNotFireHandler(t *testing.T) {
	n := New()
	disk := n.AddResource("disk", 100, 0)
	fired := 0
	n.OnComplete(func(now float64, f *Flow) { fired++ })
	id := n.Start([]ResourceID{disk}, 100, 0, "x")
	n.Cancel(id)
	n.Run()
	if fired != 0 {
		t.Fatalf("handler fired %d times for cancelled flow", fired)
	}
}

func TestWorkAccounting(t *testing.T) {
	n := New()
	disk := n.AddResource("disk", 100, 0)
	tx := n.AddResource("tx", 200, 0)
	n.Start([]ResourceID{disk, tx}, 100, 0, "remote")
	n.Start([]ResourceID{disk}, 50, 0, "local")
	n.Run()
	if !almostEqual(n.WorkMB(disk), 150, 1e-6) {
		t.Fatalf("disk work = %v, want 150", n.WorkMB(disk))
	}
	if !almostEqual(n.WorkMB(tx), 100, 1e-6) {
		t.Fatalf("tx work = %v, want 100", n.WorkMB(tx))
	}
}

func TestUtilization(t *testing.T) {
	n := New()
	disk := n.AddResource("disk", 100, 0)
	n.Start([]ResourceID{disk}, 100, 0, "r")
	n.Run() // takes exactly 1s at full rate: utilization 1.0
	if u := n.Utilization(disk, 0); !almostEqual(u, 1.0, 1e-6) {
		t.Fatalf("utilization = %v, want 1.0", u)
	}
	// Idle time dilutes utilization: a timer doubles elapsed time.
	n.Start(nil, 0, 1.0, "idle")
	n.Run()
	if u := n.Utilization(disk, 0); !almostEqual(u, 0.5, 1e-6) {
		t.Fatalf("utilization after idle = %v, want 0.5", u)
	}
	if u := n.Utilization(disk, n.Now()); u != 0 {
		t.Fatalf("empty window utilization = %v", u)
	}
}
