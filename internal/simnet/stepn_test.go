package simnet

import "testing"

func TestStepNBudgetedDrain(t *testing.T) {
	n := New()
	disk := n.AddResource("disk", 100, 0)
	n.Start([]ResourceID{disk}, 50, 0, "small")
	n.Start([]ResourceID{disk}, 150, 0, "big")
	// Two completion events remain; a budget of 1 consumes exactly one and
	// reports more work pending.
	if !n.StepN(1) {
		t.Fatal("StepN(1) = false with a flow still active")
	}
	if n.Active() != 1 {
		t.Fatalf("active = %d after one step, want 1", n.Active())
	}
	if n.StepN(10) {
		t.Fatal("StepN = true after the network drained")
	}
	if n.Active() != 0 {
		t.Fatalf("active = %d after drain, want 0", n.Active())
	}
	// Stepping an idle network is a no-op that reports drained.
	if n.StepN(5) {
		t.Fatal("StepN on an idle network = true")
	}
}

func TestStepNMatchesRun(t *testing.T) {
	// Draining via budgeted slices must land on the same clock as Run.
	build := func() *Network {
		n := New()
		disk := n.AddResource("disk", 100, 0)
		nic := n.AddResource("nic", 120, 0)
		n.Start([]ResourceID{disk}, 50, 0.1, "a")
		n.Start([]ResourceID{disk, nic}, 100, 0, "b")
		n.Start([]ResourceID{nic}, 30, 0.25, "c")
		return n
	}
	ref := build()
	want := ref.Run()
	n := build()
	for n.StepN(2) {
	}
	if got := n.Now(); got != want {
		t.Fatalf("sliced drain ended at %v, Run at %v", got, want)
	}
}
