package telemetry

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestMiddlewarePreservesFlusher(t *testing.T) {
	// The statusRecorder wrapper must expose the underlying writer through
	// Unwrap, or http.ResponseController loses Flush (and every other
	// optional interface) for handlers behind the middleware.
	reg := NewRegistry()
	var flushErr error = http.ErrNotSupported
	h := Middleware{Reg: reg}.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		flushErr = http.NewResponseController(w).Flush()
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if flushErr != nil {
		t.Fatalf("Flush through the middleware failed: %v", flushErr)
	}
	if !rec.Flushed {
		t.Fatal("flush never reached the underlying ResponseWriter")
	}
}
