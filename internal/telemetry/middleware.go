// HTTP instrumentation: request IDs, one structured log line per request,
// and per-route status/latency series in the registry.
package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// Metric family names recorded by the middleware.
const (
	MetricHTTPRequests  = "opass_http_requests_total"
	MetricHTTPDuration  = "opass_http_request_duration_seconds"
	MetricHTTPInflight  = "opass_http_inflight_requests"
	MetricHTTPRespBytes = "opass_http_response_bytes_total"
)

// RequestIDHeader carries the per-request ID on responses (and is honored
// on requests, so upstream proxies can thread their own IDs through).
const RequestIDHeader = "X-Request-Id"

type ctxKey int

const requestIDKey ctxKey = 0

// RequestID extracts the request ID stamped by the middleware, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// newRequestID returns 8 random bytes hex-encoded; on entropy failure it
// degrades to a fixed marker rather than failing the request.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unavailable"
	}
	return hex.EncodeToString(b[:])
}

// statusRecorder captures the status code and bytes written by a handler.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// Unwrap exposes the underlying ResponseWriter so http.ResponseController
// can reach optional interfaces (Flusher, deadline control) through the
// wrapper — without it, streaming handlers behind the middleware lose the
// ability to flush.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// Middleware instruments an http.Handler. Reg must be non-nil; Logger nil
// disables request logging; Route nil uses the raw URL path as the route
// label (fine for a fixed route set, a cardinality hazard otherwise).
type Middleware struct {
	Reg    *Registry
	Logger *slog.Logger
	// Route maps a request to its route label, bounding label cardinality.
	Route func(*http.Request) string
}

// Wrap returns next instrumented with request IDs, logging, and metrics.
func (m Middleware) Wrap(next http.Handler) http.Handler {
	m.Reg.Help(MetricHTTPRequests, "HTTP requests served, by route/method/status.")
	m.Reg.Help(MetricHTTPDuration, "HTTP request latency in seconds, by route.")
	m.Reg.Help(MetricHTTPInflight, "Requests currently being served.")
	m.Reg.Help(MetricHTTPRespBytes, "Response body bytes written, by route.")
	inflight := m.Reg.Gauge(MetricHTTPInflight)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := r.URL.Path
		if m.Route != nil {
			route = m.Route(r)
		}
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		rec := &statusRecorder{ResponseWriter: w}
		inflight.Add(1)
		start := time.Now()
		next.ServeHTTP(rec, r.WithContext(context.WithValue(r.Context(), requestIDKey, id)))
		elapsed := time.Since(start)
		inflight.Add(-1)
		if rec.status == 0 { // handler wrote nothing: net/http sends 200
			rec.status = http.StatusOK
		}
		m.Reg.Counter(MetricHTTPRequests,
			L("route", route), L("method", r.Method), L("status", strconv.Itoa(rec.status))).Inc()
		m.Reg.Histogram(MetricHTTPDuration, nil, L("route", route)).Observe(elapsed.Seconds())
		m.Reg.Counter(MetricHTTPRespBytes, L("route", route)).Add(float64(rec.bytes))
		if m.Logger != nil {
			m.Logger.Info("request",
				slog.String("id", id),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", route),
				slog.Int("status", rec.status),
				slog.Int64("bytes", rec.bytes),
				slog.Duration("elapsed", elapsed),
				slog.String("remote", r.RemoteAddr),
			)
		}
	})
}
