package telemetry

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMiddlewareStampsRequestID(t *testing.T) {
	reg := NewRegistry()
	var sawID string
	h := Middleware{Reg: reg}.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sawID = RequestID(r.Context())
		w.WriteHeader(http.StatusTeapot)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	hdr := rec.Header().Get(RequestIDHeader)
	if hdr == "" || hdr != sawID {
		t.Fatalf("request ID header %q vs context %q", hdr, sawID)
	}
	// A caller-supplied ID is threaded through untouched.
	req := httptest.NewRequest("GET", "/x", nil)
	req.Header.Set(RequestIDHeader, "upstream-7")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Header().Get(RequestIDHeader) != "upstream-7" || sawID != "upstream-7" {
		t.Fatalf("upstream ID not honored: header %q, ctx %q", rec.Header().Get(RequestIDHeader), sawID)
	}
}

func TestMiddlewareRecordsMetrics(t *testing.T) {
	reg := NewRegistry()
	h := Middleware{
		Reg:   reg,
		Route: func(r *http.Request) string { return "/route" },
	}.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/fail" {
			http.Error(w, "nope", http.StatusBadRequest)
			return
		}
		w.Write([]byte("hello"))
	}))
	for _, p := range []string{"/ok", "/ok", "/fail"} {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", p, nil))
	}
	if got := reg.Counter(MetricHTTPRequests, L("route", "/route"), L("method", "GET"), L("status", "200")).Value(); got != 2 {
		t.Fatalf("200 count = %v, want 2", got)
	}
	if got := reg.Counter(MetricHTTPRequests, L("route", "/route"), L("method", "GET"), L("status", "400")).Value(); got != 1 {
		t.Fatalf("400 count = %v, want 1", got)
	}
	if got := reg.Histogram(MetricHTTPDuration, nil, L("route", "/route")).Count(); got != 3 {
		t.Fatalf("latency observations = %d, want 3", got)
	}
	if got := reg.Gauge(MetricHTTPInflight).Value(); got != 0 {
		t.Fatalf("inflight after drain = %v, want 0", got)
	}
	if got := reg.Counter(MetricHTTPRespBytes, L("route", "/route")).Value(); got < 10 {
		t.Fatalf("response bytes = %v, want >= 10", got)
	}
}

func TestMiddlewareLogsOneLinePerRequest(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	h := Middleware{Reg: NewRegistry(), Logger: logger}.Wrap(
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusNotFound)
		}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/v1/plan", nil))

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d log lines, want 1: %q", len(lines), buf.String())
	}
	var entry map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatalf("log line is not JSON: %v", err)
	}
	if entry["method"] != "POST" || entry["path"] != "/v1/plan" || entry["status"] != float64(404) {
		t.Fatalf("log entry fields wrong: %v", entry)
	}
	if id, _ := entry["id"].(string); id == "" {
		t.Fatal("log entry has no request id")
	}
}
