// Package telemetry is the service-side measurement layer: a
// concurrency-safe metrics registry (counters, gauges, and bucketed latency
// histograms with quantile summaries) plus HTTP middleware that stamps a
// request ID, writes one structured log line per request, and records
// status/latency per route.
//
// It is deliberately distinct from internal/metrics: that package computes
// the *simulation* statistics the paper reports (I/O time summaries, Jain
// fairness, figure histograms); this one measures the *service* serving
// those planners — the per-operation visibility the paper's §V-A1 per-node
// monitor provides at the storage layer, lifted to the request layer. The
// registry's text exposition follows the Prometheus format so any standard
// scraper can consume GET /metrics.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// Label is one name/value dimension of a metric.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// DefBuckets are the default latency buckets in seconds, spanning fast
// in-memory planning (tens of microseconds) through slow simulated runs.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// FractionBuckets are equal-width buckets over [0,1] for ratio-valued
// observations such as locality fractions.
var FractionBuckets = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.999, 1}

// metricKind discriminates exposition types.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// Counter is a monotonically increasing value.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by d; negative or non-finite deltas are ignored
// (counters only go up).
func (c *Counter) Add(d float64) {
	if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
		return
	}
	c.mu.Lock()
	c.v += d
	c.mu.Unlock()
}

// Value reads the current count.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a value that can go up and down.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the value; NaN is ignored so a gauge never poisons a scrape.
func (g *Gauge) Set(v float64) {
	if math.IsNaN(v) {
		return
	}
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add shifts the value by d.
func (g *Gauge) Add(d float64) {
	if math.IsNaN(d) {
		return
	}
	g.mu.Lock()
	g.v += d
	g.mu.Unlock()
}

// Value reads the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram buckets observations by upper bound (cumulative, Prometheus
// style) and tracks count/sum/min/max so quantiles can be summarized
// without retaining samples.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // strictly increasing upper bounds; +Inf implicit
	counts  []uint64  // len(bounds)+1; last is the +Inf bucket
	count   uint64
	sum     float64
	minV    float64
	maxV    float64
	touched bool
}

func newHistogram(bounds []float64) *Histogram {
	cp := append([]float64(nil), bounds...)
	sort.Float64s(cp)
	return &Histogram{bounds: cp, counts: make([]uint64, len(cp)+1)}
}

// Observe records one observation. NaN observations are dropped; ±Inf
// clamps into the outermost bucket.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.count++
	if !math.IsInf(v, 0) {
		h.sum += v
	} else if v > 0 {
		h.sum += h.bounds[len(h.bounds)-1]
	}
	if !h.touched || v < h.minV {
		h.minV = v
	}
	if !h.touched || v > h.maxV {
		h.maxV = v
	}
	h.touched = true
}

// HistogramSnapshot is a consistent copy of a histogram's state.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64 // per-bucket (non-cumulative); last is +Inf
	Count  uint64
	Sum    float64
	Min    float64
	Max    float64
}

// Snapshot copies the histogram under its lock.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Count:  h.count,
		Sum:    h.sum,
		Min:    h.minV,
		Max:    h.maxV,
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean is the average observation, or 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-th quantile (0..1) by linear interpolation
// within the containing bucket, the same estimate Prometheus's
// histogram_quantile computes. Observations in the +Inf bucket report the
// recorded maximum. An empty histogram reports NaN.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var run uint64
	for i, c := range s.Counts {
		run += c
		if float64(run) < rank {
			continue
		}
		if i == len(s.Counts)-1 { // +Inf bucket
			return s.Max
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			// The quantile landed on an empty bucket (possible at the rank
			// boundaries, e.g. Quantile(0) against an untouched first bucket).
			// Its upper bound can sit outside the observed range, so clamp
			// exactly as the interpolated path below does.
			if hi < s.Min {
				return s.Min
			}
			if hi > s.Max {
				return s.Max
			}
			return hi
		}
		frac := (rank - float64(run-c)) / float64(c)
		v := lo + (hi-lo)*frac
		// Never report outside the observed range (tightens the first and
		// last occupied buckets).
		if v < s.Min {
			v = s.Min
		}
		if v > s.Max {
			v = s.Max
		}
		return v
	}
	return s.Max
}

// metricKey identifies one labeled series.
type metricKey struct {
	name   string
	labels string // canonical serialized form
}

type series struct {
	name    string
	labels  []Label
	kind    metricKind
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds named metric families. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu     sync.Mutex
	series map[metricKey]*series
	help   map[string]string
	kinds  map[string]metricKind
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		series: make(map[metricKey]*series),
		help:   make(map[string]string),
		kinds:  make(map[string]metricKind),
	}
}

// Help attaches a HELP string to a metric family name, shown in the text
// exposition.
func (r *Registry) Help(name, text string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = text
}

func canonLabels(labels []Label) ([]Label, string) {
	cp := append([]Label(nil), labels...)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Key < cp[j].Key })
	var b strings.Builder
	for i, l := range cp {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	return cp, b.String()
}

func (r *Registry) lookup(name string, kind metricKind, labels []Label) *series {
	cp, ls := canonLabels(labels)
	key := metricKey{name: name, labels: ls}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[key]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with a different type", name))
		}
		return s
	}
	if k, ok := r.kinds[name]; ok && k != kind {
		panic(fmt.Sprintf("telemetry: metric %q re-registered with a different type", name))
	}
	s := &series{name: name, labels: cp, kind: kind}
	r.series[key] = s
	r.kinds[name] = kind
	return s
}

// Counter returns (creating on first use) the counter series for
// name+labels.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	s := r.lookup(name, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns (creating on first use) the gauge series for name+labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	s := r.lookup(name, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram returns (creating on first use) the histogram series for
// name+labels. buckets is consulted only on first creation; nil means
// DefBuckets.
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	s := r.lookup(name, kindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.hist == nil {
		if buckets == nil {
			buckets = DefBuckets
		}
		s.hist = newHistogram(buckets)
	}
	return s.hist
}

// promLabels renders {k="v",...} or "" for an unlabeled series, with extra
// appended after the series' own labels.
func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return formatFloat(v)
	}
}

// formatFloat formats a float compactly without scientific surprise for
// integers.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every series in Prometheus text exposition
// format (v0.0.4), grouped by family with TYPE/HELP headers, in stable
// sorted order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	all := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		all = append(all, s)
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	sort.Slice(all, func(i, j int) bool {
		if all[i].name != all[j].name {
			return all[i].name < all[j].name
		}
		_, li := canonLabels(all[i].labels)
		_, lj := canonLabels(all[j].labels)
		return li < lj
	})

	var b strings.Builder
	lastFamily := ""
	for _, s := range all {
		if s.name != lastFamily {
			lastFamily = s.name
			if h, ok := help[s.name]; ok {
				fmt.Fprintf(&b, "# HELP %s %s\n", s.name, h)
			}
			typ := "counter"
			switch s.kind {
			case kindGauge:
				typ = "gauge"
			case kindHistogram:
				typ = "histogram"
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.name, typ)
		}
		switch s.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s%s %s\n", s.name, promLabels(s.labels), promFloat(s.counter.Value()))
		case kindGauge:
			fmt.Fprintf(&b, "%s%s %s\n", s.name, promLabels(s.labels), promFloat(s.gauge.Value()))
		case kindHistogram:
			snap := s.hist.Snapshot()
			var run uint64
			for i, c := range snap.Counts {
				run += c
				bound := math.Inf(1)
				if i < len(snap.Bounds) {
					bound = snap.Bounds[i]
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", s.name, promLabels(s.labels, L("le", promFloat(bound))), run)
			}
			fmt.Fprintf(&b, "%s_sum%s %s\n", s.name, promLabels(s.labels), promFloat(snap.Sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", s.name, promLabels(s.labels), snap.Count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
