package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", L("route", "/v1/plan"))
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %v, want 3", got)
	}
	// Same name+labels returns the same series.
	if r.Counter("requests_total", L("route", "/v1/plan")) != c {
		t.Fatal("lookup did not return the existing series")
	}
	// Label order must not matter.
	c2 := r.Counter("multi", L("a", "1"), L("b", "2"))
	if r.Counter("multi", L("b", "2"), L("a", "1")) != c2 {
		t.Fatal("label order changed series identity")
	}
	// Counters refuse to go down or absorb non-finite deltas.
	c.Add(-5)
	c.Add(math.NaN())
	c.Add(math.Inf(1))
	if got := c.Value(); got != 3 {
		t.Fatalf("counter after bad deltas = %v, want 3", got)
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("inflight")
	g.Set(5)
	g.Add(-2)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %v, want 3", got)
	}
	g.Set(math.NaN())
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge after NaN set = %v, want 3", got)
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x")
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 8} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	wantCounts := []uint64{1, 2, 1, 1} // (..1], (1..2], (2..4], (4..Inf)
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Sum != 14.5 {
		t.Fatalf("sum = %v, want 14.5", s.Sum)
	}
	if s.Min != 0.5 || s.Max != 8 {
		t.Fatalf("min/max = %v/%v, want 0.5/8", s.Min, s.Max)
	}
	// Median falls in the (1,2] bucket; the interpolated estimate stays
	// inside that bucket.
	med := s.Quantile(0.5)
	if med < 1 || med > 2 {
		t.Fatalf("p50 = %v, want within (1,2]", med)
	}
	// The top quantile lands in the +Inf bucket and reports the observed max.
	if p := s.Quantile(1); p != 8 {
		t.Fatalf("p100 = %v, want 8", p)
	}
	if mean := s.Mean(); mean != 14.5/5 {
		t.Fatalf("mean = %v", mean)
	}
}

func TestQuantileEmptyBucketClampedToObservedRange(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 3})
	h.Observe(1.5) // only the (1,2] bucket is occupied
	s := h.Snapshot()
	// Quantile(0) has rank 0, which lands on the empty (..1] bucket; its
	// upper bound (1) sits below the observed minimum. The estimate must be
	// clamped to the observed range, like every other quantile.
	if got := s.Quantile(0); got != 1.5 {
		t.Fatalf("Quantile(0) = %v, want the observed min 1.5", got)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if v := s.Quantile(q); v < s.Min || v > s.Max {
			t.Fatalf("Quantile(%v) = %v outside observed range [%v,%v]", q, v, s.Min, s.Max)
		}
	}
}

func TestHistogramRejectsNaNClampsInf(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2})
	h.Observe(math.NaN())
	if h.Count() != 0 {
		t.Fatal("NaN observation was recorded")
	}
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("count = %d, want 2", s.Count)
	}
	if s.Counts[0] != 1 || s.Counts[len(s.Counts)-1] != 1 {
		t.Fatalf("Inf observations not clamped to edge buckets: %v", s.Counts)
	}
	if math.IsNaN(s.Sum) || math.IsInf(s.Sum, 0) {
		t.Fatalf("sum poisoned: %v", s.Sum)
	}
}

func TestEmptyHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	s := r.Histogram("lat", nil).Snapshot()
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Help("req_total", "requests served")
	r.Counter("req_total", L("route", "/v1/plan")).Add(3)
	r.Counter("req_total", L("route", "/v1/simulate")).Inc()
	r.Gauge("inflight").Set(2)
	h := r.Histogram("lat_seconds", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(9)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP req_total requests served",
		"# TYPE req_total counter",
		`req_total{route="/v1/plan"} 3`,
		`req_total{route="/v1/simulate"} 1`,
		"# TYPE inflight gauge",
		"inflight 2",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.5"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 10",
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Scrapes must be deterministic.
	var b2 strings.Builder
	r.WritePrometheus(&b2)
	if b2.String() != out {
		t.Fatal("two scrapes of an unchanged registry differ")
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("c", L("g", string(rune('a'+g%4)))).Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", nil, L("g", string(rune('a'+g%4)))).Observe(float64(i) / 100)
				if i%100 == 0 {
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Error(err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	var total float64
	for _, l := range []string{"a", "b", "c", "d"} {
		total += r.Counter("c", L("g", l)).Value()
	}
	if total != 8*500 {
		t.Fatalf("lost counter increments: %v", total)
	}
	if got := r.Gauge("g").Value(); got != 8*500 {
		t.Fatalf("lost gauge adds: %v", got)
	}
}
