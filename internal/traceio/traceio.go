// Package traceio serializes experiment results to CSV and JSON so the
// regenerated figures can be re-plotted outside the repository (gnuplot,
// matplotlib, spreadsheets). The formats are deliberately plain: one row
// per read for traces, one row per node for load profiles, and a JSON
// envelope with the summary statistics the paper quotes.
package traceio

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"opass/internal/engine"
	"opass/internal/metrics"
)

// WriteReadsCSV writes one row per chunk read: the Figure 7c/9/11/12 data.
func WriteReadsCSV(w io.Writer, records []engine.ReadRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"index", "proc", "task", "chunk", "src_node", "dst_node", "local", "size_mb", "start_s", "end_s", "duration_s"}); err != nil {
		return fmt.Errorf("traceio: %w", err)
	}
	for i, r := range records {
		row := []string{
			strconv.Itoa(i),
			strconv.Itoa(r.Proc),
			strconv.Itoa(r.Task),
			strconv.Itoa(int(r.Chunk)),
			strconv.Itoa(r.SrcNode),
			strconv.Itoa(r.DstNode),
			strconv.FormatBool(r.Local),
			fmtFloat(r.SizeMB),
			fmtFloat(r.Start),
			fmtFloat(r.End),
			fmtFloat(r.Duration()),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("traceio: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteNodeLoadCSV writes one row per node: the Figure 1a/8c/10 data.
func WriteNodeLoadCSV(w io.Writer, servedMB []float64) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"node", "served_mb"}); err != nil {
		return fmt.Errorf("traceio: %w", err)
	}
	for n, mb := range servedMB {
		if err := cw.Write([]string{strconv.Itoa(n), fmtFloat(mb)}); err != nil {
			return fmt.Errorf("traceio: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Summary is the JSON envelope for one run.
type Summary struct {
	Strategy      string          `json:"strategy"`
	Tasks         int             `json:"tasks"`
	Makespan      float64         `json:"makespan_s"`
	IO            metrics.Summary `json:"io_time_s"`
	Served        metrics.Summary `json:"served_mb"`
	LocalFraction float64         `json:"local_fraction"`
	Fairness      float64         `json:"jain_fairness"`
	Retries       int             `json:"retries,omitempty"`
	FailedNodes   []int           `json:"failed_nodes,omitempty"`
	// Fault-recovery counters: nodes that came back from a transient
	// outage, backlog replans spliced into the run, and chunks restored to
	// full replication by the repair pass.
	RecoveredNodes []int `json:"recovered_nodes,omitempty"`
	Replans        int   `json:"replans,omitempty"`
	RepairedChunks int   `json:"repaired_chunks,omitempty"`
}

// Summarize converts an engine result into the JSON envelope.
func Summarize(res *engine.Result) Summary {
	return Summary{
		Strategy:       res.Strategy,
		Tasks:          res.TasksRun,
		Makespan:       res.Makespan,
		IO:             metrics.Summarize(res.IOTimes()),
		Served:         metrics.Summarize(res.ServedMB),
		LocalFraction:  res.LocalFraction(),
		Fairness:       metrics.JainIndex(res.ServedMB),
		Retries:        res.Retries,
		FailedNodes:    res.FailedNodes,
		RecoveredNodes: res.RecoveredNodes,
		Replans:        res.Replans,
		RepairedChunks: res.RepairedChunks,
	}
}

// WriteSummaryJSON writes the envelope, indented for human diffing.
func WriteSummaryJSON(w io.Writer, res *engine.Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(Summarize(res)); err != nil {
		return fmt.Errorf("traceio: %w", err)
	}
	return nil
}

// ReadSummaryJSON parses an envelope written by WriteSummaryJSON — used by
// regression tooling comparing two recorded runs.
func ReadSummaryJSON(r io.Reader) (Summary, error) {
	var s Summary
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return Summary{}, fmt.Errorf("traceio: %w", err)
	}
	return s, nil
}

// WriteSeriesCSV writes (x, y...) rows for multi-series figures such as the
// Figure 3 CDFs. Every series must have the same length.
func WriteSeriesCSV(w io.Writer, xHeader string, xs []float64, names []string, series [][]float64) error {
	if len(names) != len(series) {
		return fmt.Errorf("traceio: %d names for %d series", len(names), len(series))
	}
	for i, s := range series {
		if len(s) != len(xs) {
			return fmt.Errorf("traceio: series %q has %d points, want %d", names[i], len(s), len(xs))
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{xHeader}, names...)); err != nil {
		return fmt.Errorf("traceio: %w", err)
	}
	for i, x := range xs {
		row := make([]string, 0, 1+len(series))
		row = append(row, fmtFloat(x))
		for _, s := range series {
			row = append(row, fmtFloat(s[i]))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("traceio: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }
