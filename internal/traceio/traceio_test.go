package traceio

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"opass/internal/cluster"
	"opass/internal/core"
	"opass/internal/dfs"
	"opass/internal/engine"
)

func result(t testing.TB) *engine.Result {
	t.Helper()
	topo := cluster.New(4, cluster.Marmot())
	fs := dfs.New(topo, dfs.Config{Seed: 1})
	if _, err := fs.Create("/d", 4*3*64); err != nil {
		t.Fatal(err)
	}
	prob, err := core.SingleDataProblem(fs, []string{"/d"}, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.RankStatic{}.Assign(prob)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.RunAssignment(engine.Options{Topo: topo, FS: fs, Problem: prob, Strategy: "rank"}, a)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWriteReadsCSV(t *testing.T) {
	res := result(t)
	var buf bytes.Buffer
	if err := WriteReadsCSV(&buf, res.Records); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(res.Records)+1 {
		t.Fatalf("rows = %d, want %d", len(rows), len(res.Records)+1)
	}
	if rows[0][0] != "index" || rows[0][10] != "duration_s" {
		t.Fatalf("header = %v", rows[0])
	}
	if rows[1][6] != "true" && rows[1][6] != "false" {
		t.Fatalf("local column = %q", rows[1][6])
	}
}

func TestWriteNodeLoadCSV(t *testing.T) {
	res := result(t)
	var buf bytes.Buffer
	if err := WriteNodeLoadCSV(&buf, res.ServedMB); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(res.ServedMB)+1 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestSummaryJSONRoundTrip(t *testing.T) {
	res := result(t)
	var buf bytes.Buffer
	if err := WriteSummaryJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"strategy\": \"rank\"") {
		t.Fatalf("json = %s", buf.String())
	}
	got, err := ReadSummaryJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Strategy != "rank" || got.Tasks != 12 {
		t.Fatalf("round trip = %+v", got)
	}
	if got.Makespan != res.Makespan {
		t.Fatalf("makespan %v != %v", got.Makespan, res.Makespan)
	}
}

func TestReadSummaryJSONBadInput(t *testing.T) {
	if _, err := ReadSummaryJSON(strings.NewReader("{nope")); err == nil {
		t.Fatal("bad JSON must fail")
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	var buf bytes.Buffer
	xs := []float64{0, 1, 2}
	err := WriteSeriesCSV(&buf, "k", xs, []string{"a", "b"}, [][]float64{{0, 0.5, 1}, {0, 0.2, 0.4}})
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := csv.NewReader(&buf).ReadAll()
	if len(rows) != 4 || rows[0][1] != "a" || rows[2][2] != "0.2" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestWriteSeriesCSVValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, "k", []float64{1}, []string{"a"}, nil); err == nil {
		t.Fatal("mismatched names/series must fail")
	}
	if err := WriteSeriesCSV(&buf, "k", []float64{1, 2}, []string{"a"}, [][]float64{{1}}); err == nil {
		t.Fatal("short series must fail")
	}
}
