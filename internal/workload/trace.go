package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"opass/internal/cluster"
	"opass/internal/core"
	"opass/internal/dfs"
)

// This file builds workloads from external trace files, so users can replay
// their own job mixes instead of the paper's synthetic datasets. The format
// is one CSV row per task:
//
//	task_id, compute_s, input_mb[, input_mb...]
//
// Task IDs must be dense from 0; each input becomes a chunk placed by the
// configured policy (random by default, like HDFS). Comments start with #.

// TraceTask is one parsed row.
type TraceTask struct {
	ID       int
	ComputeS float64
	InputsMB []float64
}

// ParseTrace reads the CSV task trace from r.
func ParseTrace(r io.Reader) ([]TraceTask, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // rows vary in input count
	cr.Comment = '#'
	cr.TrimLeadingSpace = true
	var tasks []TraceTask
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: trace: %w", err)
		}
		if len(row) < 3 {
			return nil, fmt.Errorf("workload: trace row %d needs task_id, compute_s and at least one input", len(tasks))
		}
		id, err := strconv.Atoi(strings.TrimSpace(row[0]))
		if err != nil {
			return nil, fmt.Errorf("workload: trace row %d: bad task id %q", len(tasks), row[0])
		}
		if id != len(tasks) {
			return nil, fmt.Errorf("workload: trace row %d: task ids must be dense (got %d)", len(tasks), id)
		}
		comp, err := strconv.ParseFloat(strings.TrimSpace(row[1]), 64)
		if err != nil || comp < 0 {
			return nil, fmt.Errorf("workload: trace row %d: bad compute %q", id, row[1])
		}
		t := TraceTask{ID: id, ComputeS: comp}
		for _, f := range row[2:] {
			mb, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || mb <= 0 {
				return nil, fmt.Errorf("workload: trace row %d: bad input size %q", id, f)
			}
			t.InputsMB = append(t.InputsMB, mb)
		}
		tasks = append(tasks, t)
	}
	if len(tasks) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	return tasks, nil
}

// TraceSpec materializes a parsed trace on a fresh cluster.
type TraceSpec struct {
	Nodes     int
	Tasks     []TraceTask
	Seed      int64
	Placement dfs.Placement
	Profile   *cluster.Profile
}

// Build materializes the trace workload: each input becomes one chunk, and
// Compute returns each task's traced compute time.
func (s TraceSpec) Build() (*Rig, error) {
	if s.Nodes <= 0 {
		return nil, fmt.Errorf("workload: trace spec needs nodes")
	}
	if len(s.Tasks) == 0 {
		return nil, fmt.Errorf("workload: trace spec has no tasks")
	}
	prof := cluster.Marmot()
	if s.Profile != nil {
		prof = *s.Profile
	}
	topo := cluster.New(s.Nodes, prof)
	fs := dfs.New(topo, dfs.Config{Seed: s.Seed, Placement: s.Placement})
	prob := &core.Problem{ProcNode: identityProcs(s.Nodes), FS: fs}
	compute := make([]float64, len(s.Tasks))
	for _, tt := range s.Tasks {
		task := core.Task{ID: tt.ID}
		for i, mb := range tt.InputsMB {
			f, err := fs.CreateChunks(fmt.Sprintf("/trace/t%d/i%d", tt.ID, i), []float64{mb})
			if err != nil {
				return nil, err
			}
			task.Inputs = append(task.Inputs, core.Input{Chunk: f.Chunks[0], SizeMB: mb})
		}
		prob.Tasks = append(prob.Tasks, task)
		compute[tt.ID] = tt.ComputeS
	}
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	rig := &Rig{Topo: topo, FS: fs, Prob: prob}
	hasCompute := false
	for _, c := range compute {
		if c > 0 {
			hasCompute = true
			break
		}
	}
	if hasCompute {
		rig.Compute = func(task int) float64 {
			if task < 0 || task >= len(compute) {
				panic(fmt.Sprintf("workload: compute for unknown task %d", task))
			}
			return compute[task]
		}
	}
	return rig, nil
}
