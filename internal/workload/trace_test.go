package workload

import (
	"strings"
	"testing"

	"opass/internal/core"
	"opass/internal/engine"
)

const sampleTrace = `# task_id, compute_s, input_mb...
0, 0.5, 64
1, 1.0, 64
2, 0.0, 30, 20, 10
3, 2.5, 64
`

func TestParseTrace(t *testing.T) {
	tasks, err := ParseTrace(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 4 {
		t.Fatalf("tasks = %d", len(tasks))
	}
	if tasks[2].ComputeS != 0 || len(tasks[2].InputsMB) != 3 {
		t.Fatalf("task 2 = %+v", tasks[2])
	}
	if tasks[3].ComputeS != 2.5 {
		t.Fatalf("task 3 compute %v", tasks[3].ComputeS)
	}
}

func TestParseTraceErrors(t *testing.T) {
	for i, bad := range []string{
		"",                  // empty
		"0, 0.5",            // no inputs
		"5, 0.5, 64",        // non-dense id
		"x, 0.5, 64",        // bad id
		"0, -1, 64",         // negative compute
		"0, 0.5, -64",       // negative input
		"0, 0.5, sixtyfour", // non-numeric input
		"0, fast, 64",       // non-numeric compute
	} {
		if _, err := ParseTrace(strings.NewReader(bad)); err == nil {
			t.Errorf("case %d (%q): expected error", i, bad)
		}
	}
}

func TestTraceSpecBuildAndRun(t *testing.T) {
	tasks, err := ParseTrace(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	rig, err := TraceSpec{Nodes: 4, Tasks: tasks, Seed: 1}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(rig.Prob.Tasks) != 4 {
		t.Fatalf("problem tasks = %d", len(rig.Prob.Tasks))
	}
	if rig.Compute == nil || rig.Compute(3) != 2.5 {
		t.Fatal("traced compute times lost")
	}
	// Mixed single- and multi-input tasks route through the greedy planner
	// (handles both shapes).
	a, err := core.GreedyLocality{}.Assign(rig.Prob)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.RunAssignment(engine.Options{
		Topo: rig.Topo, FS: rig.FS, Problem: rig.Prob,
		ComputeTime: rig.Compute, Strategy: "trace",
	}, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksRun != 4 {
		t.Fatalf("ran %d tasks", res.TasksRun)
	}
	// Total reads = 3 single inputs + 3 multi inputs.
	if len(res.Records) != 6 {
		t.Fatalf("records = %d, want 6", len(res.Records))
	}
	// Makespan at least the longest compute.
	if res.Makespan < 2.5 {
		t.Fatalf("makespan %v below traced compute", res.Makespan)
	}
}

func TestTraceSpecValidation(t *testing.T) {
	if _, err := (TraceSpec{Nodes: 0, Tasks: []TraceTask{{ID: 0, InputsMB: []float64{1}}}}).Build(); err == nil {
		t.Fatal("zero nodes must fail")
	}
	if _, err := (TraceSpec{Nodes: 4}).Build(); err == nil {
		t.Fatal("no tasks must fail")
	}
}

func TestTraceSpecPureIOHasNilCompute(t *testing.T) {
	tasks, _ := ParseTrace(strings.NewReader("0, 0, 64\n1, 0, 64\n"))
	rig, err := TraceSpec{Nodes: 4, Tasks: tasks, Seed: 2}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if rig.Compute != nil {
		t.Fatal("all-zero compute should leave Compute nil")
	}
}
