// Package workload constructs the datasets and task sets of the paper's
// experiments: the single-data microbenchmark (ten 64 MB chunks per
// process, §V-A1), the multi-data task set (three inputs of 30/20/10 MB per
// task from three different datasets, §V-A2), and the dynamic master/worker
// workload with irregular per-task computation (§V-A3). Every builder
// returns a ready topology, file system, and assignment problem so the
// bench harness and the examples stay declarative.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"opass/internal/cluster"
	"opass/internal/core"
	"opass/internal/dfs"
)

// Rig bundles everything an experiment needs.
type Rig struct {
	Topo *cluster.Topology
	FS   *dfs.FileSystem
	Prob *core.Problem
	// Compute, when non-nil, gives each task's post-read computation time
	// in seconds (heterogeneous workloads).
	Compute func(task int) float64
}

// SingleSpec describes a parallel single-data access workload: one process
// per node, ChunksPerProc single-chunk tasks per process.
type SingleSpec struct {
	Nodes         int
	ChunksPerProc int
	ChunkMB       float64 // 0 means 64, the HDFS default used in the paper
	Seed          int64
	Placement     dfs.Placement // nil means random, as in the paper
	Profile       *cluster.Profile
}

// Build materializes the workload.
func (s SingleSpec) Build() (*Rig, error) {
	if s.Nodes <= 0 || s.ChunksPerProc <= 0 {
		return nil, fmt.Errorf("workload: invalid single spec %+v", s)
	}
	chunkMB := s.ChunkMB
	if chunkMB == 0 {
		chunkMB = 64
	}
	prof := cluster.Marmot()
	if s.Profile != nil {
		prof = *s.Profile
	}
	topo := cluster.New(s.Nodes, prof)
	fs := dfs.New(topo, dfs.Config{Seed: s.Seed, ChunkSizeMB: chunkMB, Placement: s.Placement})
	total := float64(s.Nodes*s.ChunksPerProc) * chunkMB
	if _, err := fs.Create("/dataset", total); err != nil {
		return nil, err
	}
	procNode := identityProcs(s.Nodes)
	prob, err := core.SingleDataProblem(fs, []string{"/dataset"}, procNode)
	if err != nil {
		return nil, err
	}
	return &Rig{Topo: topo, FS: fs, Prob: prob}, nil
}

// MultiSpec describes the multi-data workload: TasksPerProc tasks per
// process, each reading one piece from each of the datasets in InputsMB
// (defaults to the paper's 30/20/10 MB triple).
type MultiSpec struct {
	Nodes        int
	TasksPerProc int
	InputsMB     []float64
	Seed         int64
	Placement    dfs.Placement
	Profile      *cluster.Profile
}

// Build materializes the workload.
func (s MultiSpec) Build() (*Rig, error) {
	if s.Nodes <= 0 || s.TasksPerProc <= 0 {
		return nil, fmt.Errorf("workload: invalid multi spec %+v", s)
	}
	inputs := s.InputsMB
	if len(inputs) == 0 {
		inputs = []float64{30, 20, 10}
	}
	prof := cluster.Marmot()
	if s.Profile != nil {
		prof = *s.Profile
	}
	topo := cluster.New(s.Nodes, prof)
	fs := dfs.New(topo, dfs.Config{Seed: s.Seed, Placement: s.Placement})
	n := s.Nodes * s.TasksPerProc
	// Each input class is its own dataset ("the gene datasets of species"):
	// dataset j holds n pieces of inputs[j] MB, one per task.
	sets := make([][]dfs.ChunkID, len(inputs))
	for j, sz := range inputs {
		sizes := make([]float64, n)
		for i := range sizes {
			sizes[i] = sz
		}
		f, err := fs.CreateChunks(fmt.Sprintf("/set%d", j), sizes)
		if err != nil {
			return nil, err
		}
		sets[j] = f.Chunks
	}
	prob := &core.Problem{ProcNode: identityProcs(s.Nodes), FS: fs}
	for i := 0; i < n; i++ {
		task := core.Task{ID: i}
		for j, sz := range inputs {
			task.Inputs = append(task.Inputs, core.Input{Chunk: sets[j][i], SizeMB: sz})
		}
		prob.Tasks = append(prob.Tasks, task)
	}
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	return &Rig{Topo: topo, FS: fs, Prob: prob}, nil
}

// DynamicSpec describes the §V-A3 workload: single-chunk tasks whose
// computation times are irregular ("difficult to predict according to the
// input data"), drawn from a log-normal distribution, executed through a
// master/worker dispatch loop.
type DynamicSpec struct {
	Nodes         int
	ChunksPerProc int
	Seed          int64
	// ComputeMean is the mean task computation time in seconds; zero
	// disables compute (pure I/O).
	ComputeMean float64
	// ComputeSigma is the sigma of the underlying normal; larger values
	// give heavier tails. Defaults to 0.8 when ComputeMean > 0.
	ComputeSigma float64
	Placement    dfs.Placement
	Profile      *cluster.Profile
}

// Build materializes the workload.
func (s DynamicSpec) Build() (*Rig, error) {
	rig, err := SingleSpec{
		Nodes:         s.Nodes,
		ChunksPerProc: s.ChunksPerProc,
		Seed:          s.Seed,
		Placement:     s.Placement,
		Profile:       s.Profile,
	}.Build()
	if err != nil {
		return nil, err
	}
	if s.ComputeMean > 0 {
		sigma := s.ComputeSigma
		if sigma == 0 {
			sigma = 0.8
		}
		rig.Compute = LogNormalCompute(len(rig.Prob.Tasks), s.ComputeMean, sigma, s.Seed+1)
	}
	return rig, nil
}

// LogNormalCompute pre-draws a fixed log-normal computation time for each
// of n tasks with the given mean and shape, so that every strategy sees
// identical task costs (paired comparison).
func LogNormalCompute(n int, mean, sigma float64, seed int64) func(int) float64 {
	rng := rand.New(rand.NewSource(seed))
	// E[lognormal(mu, sigma)] = exp(mu + sigma^2/2)  =>  solve for mu.
	mu := math.Log(mean) - sigma*sigma/2
	times := make([]float64, n)
	for i := range times {
		times[i] = math.Exp(mu + sigma*rng.NormFloat64())
	}
	return func(task int) float64 {
		if task < 0 || task >= len(times) {
			panic(fmt.Sprintf("workload: compute time for unknown task %d", task))
		}
		return times[task]
	}
}

// identityProcs places one process on each of n nodes (rank i on node i),
// the deployment used throughout the paper's evaluation.
func identityProcs(n int) []int {
	procs := make([]int, n)
	for i := range procs {
		procs[i] = i
	}
	return procs
}

// SkewedSpec builds a single-data workload over a cluster where extra
// nodes joined after the dataset was written (the §IV-B unbalanced
// redistribution scenario): LateNodes of the Nodes nodes hold no data.
type SkewedSpec struct {
	Nodes         int
	LateNodes     int
	ChunksPerProc int
	Seed          int64
	// RunBalancer moves replicas onto the late nodes before the problem is
	// built, as the HDFS balancer would.
	RunBalancer bool
}

// Build materializes the workload.
func (s SkewedSpec) Build() (*Rig, error) {
	if s.Nodes <= 0 || s.LateNodes < 0 || s.LateNodes >= s.Nodes || s.ChunksPerProc <= 0 {
		return nil, fmt.Errorf("workload: invalid skewed spec %+v", s)
	}
	topo := cluster.New(s.Nodes, cluster.Marmot())
	fs := dfs.New(topo, dfs.Config{Seed: s.Seed})
	for i := s.Nodes - s.LateNodes; i < s.Nodes; i++ {
		if err := fs.MarkDead(i); err != nil {
			return nil, err
		}
	}
	total := float64(s.Nodes*s.ChunksPerProc) * 64
	if _, err := fs.Create("/dataset", total); err != nil {
		return nil, err
	}
	for i := s.Nodes - s.LateNodes; i < s.Nodes; i++ {
		if err := fs.AddNode(i); err != nil {
			return nil, err
		}
	}
	if s.RunBalancer {
		fs.Balance(0.1)
	}
	prob, err := core.SingleDataProblem(fs, []string{"/dataset"}, identityProcs(s.Nodes))
	if err != nil {
		return nil, err
	}
	return &Rig{Topo: topo, FS: fs, Prob: prob}, nil
}
