package workload

import (
	"math"
	"testing"

	"opass/internal/core"
	"opass/internal/dfs"
	"opass/internal/engine"
)

func TestSingleSpecBuild(t *testing.T) {
	rig, err := SingleSpec{Nodes: 8, ChunksPerProc: 10, Seed: 1}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rig.Prob.Tasks); got != 80 {
		t.Fatalf("tasks = %d, want 80", got)
	}
	if rig.FS.NumChunks() != 80 {
		t.Fatalf("chunks = %d, want 80", rig.FS.NumChunks())
	}
	for _, task := range rig.Prob.Tasks {
		if len(task.Inputs) != 1 || task.Inputs[0].SizeMB != 64 {
			t.Fatalf("bad task shape: %+v", task)
		}
	}
	if rig.Topo.NumNodes() != 8 {
		t.Fatalf("nodes = %d", rig.Topo.NumNodes())
	}
}

func TestSingleSpecValidation(t *testing.T) {
	if _, err := (SingleSpec{Nodes: 0, ChunksPerProc: 1}).Build(); err == nil {
		t.Fatal("expected error for zero nodes")
	}
	if _, err := (SingleSpec{Nodes: 4, ChunksPerProc: 0}).Build(); err == nil {
		t.Fatal("expected error for zero chunks")
	}
}

func TestMultiSpecBuild(t *testing.T) {
	rig, err := MultiSpec{Nodes: 8, TasksPerProc: 5, Seed: 2}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(rig.Prob.Tasks) != 40 {
		t.Fatalf("tasks = %d, want 40", len(rig.Prob.Tasks))
	}
	for _, task := range rig.Prob.Tasks {
		if len(task.Inputs) != 3 {
			t.Fatalf("task has %d inputs, want 3", len(task.Inputs))
		}
		if task.SizeMB() != 60 {
			t.Fatalf("task size %v, want 60 (30+20+10)", task.SizeMB())
		}
	}
	// Three datasets exist.
	if files := rig.FS.Files(); len(files) != 3 {
		t.Fatalf("datasets = %v", files)
	}
}

func TestMultiSpecRunsEndToEnd(t *testing.T) {
	rig, err := MultiSpec{Nodes: 8, TasksPerProc: 3, Seed: 3}.Build()
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.MultiData{}.Assign(rig.Prob)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.RunAssignment(engine.Options{Topo: rig.Topo, FS: rig.FS, Problem: rig.Prob}, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 24*3 {
		t.Fatalf("records = %d, want 72", len(res.Records))
	}
}

func TestDynamicSpecComputeTimes(t *testing.T) {
	rig, err := DynamicSpec{Nodes: 8, ChunksPerProc: 5, Seed: 4, ComputeMean: 2.0}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if rig.Compute == nil {
		t.Fatal("compute function missing")
	}
	var sum float64
	n := len(rig.Prob.Tasks)
	varies := false
	for i := 0; i < n; i++ {
		c := rig.Compute(i)
		if c <= 0 {
			t.Fatalf("compute(%d) = %v, want positive", i, c)
		}
		if i > 0 && rig.Compute(i) != rig.Compute(0) {
			varies = true
		}
		sum += c
	}
	if !varies {
		t.Fatal("compute times should be irregular")
	}
	if mean := sum / float64(n); math.Abs(mean-2.0) > 1.0 {
		t.Fatalf("mean compute = %v, want ~2.0", mean)
	}
	// Deterministic across rebuilds.
	rig2, _ := DynamicSpec{Nodes: 8, ChunksPerProc: 5, Seed: 4, ComputeMean: 2.0}.Build()
	for i := 0; i < n; i++ {
		if rig.Compute(i) != rig2.Compute(i) {
			t.Fatal("compute times not deterministic")
		}
	}
}

func TestDynamicSpecPureIO(t *testing.T) {
	rig, err := DynamicSpec{Nodes: 4, ChunksPerProc: 2, Seed: 5}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if rig.Compute != nil {
		t.Fatal("zero ComputeMean must disable compute")
	}
}

func TestLogNormalComputePanicsOutOfRange(t *testing.T) {
	f := LogNormalCompute(3, 1, 0.5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f(5)
}

func TestSkewedSpecLateNodesEmpty(t *testing.T) {
	rig, err := SkewedSpec{Nodes: 8, LateNodes: 2, ChunksPerProc: 6, Seed: 6}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := rig.FS.StoredMB(6) + rig.FS.StoredMB(7); got != 0 {
		t.Fatalf("late nodes store %v MB, want 0", got)
	}
	// Opass still produces a valid assignment (leftover repair at work).
	a, err := core.SingleData{}.Assign(rig.Prob)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(rig.Prob); err != nil {
		t.Fatal(err)
	}
	// Processes on empty nodes cannot read locally, so no full matching.
	if a.LocalityFraction() >= 1 {
		t.Fatalf("locality %v, expected < 1 with empty nodes", a.LocalityFraction())
	}
}

func TestSkewedSpecBalancerRestoresLocality(t *testing.T) {
	noBal, err := SkewedSpec{Nodes: 8, LateNodes: 2, ChunksPerProc: 6, Seed: 7}.Build()
	if err != nil {
		t.Fatal(err)
	}
	bal, err := SkewedSpec{Nodes: 8, LateNodes: 2, ChunksPerProc: 6, Seed: 7, RunBalancer: true}.Build()
	if err != nil {
		t.Fatal(err)
	}
	aNo, _ := core.SingleData{}.Assign(noBal.Prob)
	aBal, _ := core.SingleData{}.Assign(bal.Prob)
	if aBal.LocalityFraction() <= aNo.LocalityFraction() {
		t.Fatalf("balancer should improve achievable locality: %v vs %v",
			aBal.LocalityFraction(), aNo.LocalityFraction())
	}
}

func TestSkewedSpecValidation(t *testing.T) {
	if _, err := (SkewedSpec{Nodes: 4, LateNodes: 4, ChunksPerProc: 1}).Build(); err == nil {
		t.Fatal("all-late cluster must fail")
	}
}

func TestCustomPlacementPropagates(t *testing.T) {
	rig, err := SingleSpec{Nodes: 6, ChunksPerProc: 2, Seed: 8, Placement: dfs.ClusteredPlacement{}}.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Clustered placement piles every replica on nodes 0..2.
	for n := 3; n < 6; n++ {
		if rig.FS.StoredMB(n) != 0 {
			t.Fatalf("node %d has data under clustered placement", n)
		}
	}
}
