package opass

import (
	"context"
	"errors"
	"testing"
)

// jobMixCluster builds a cluster holding one dataset per job.
func jobMixCluster(t *testing.T, nodes, jobs int) (*Cluster, []string) {
	t.Helper()
	c, err := NewClusterWithOptions(nodes, Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	files := make([]string, jobs)
	for j := range files {
		files[j] = "/job" + string(rune('a'+j))
		if err := c.Store(files[j], float64(nodes*4)*64); err != nil {
			t.Fatal(err)
		}
	}
	return c, files
}

func TestRunJobMixBothModes(t *testing.T) {
	const nodes, jobs = 8, 3
	for _, isolated := range []bool{true, false} {
		c, files := jobMixCluster(t, nodes, jobs)
		mix := make([]JobMixJob, jobs)
		for j, f := range files {
			plan, err := c.PlanSingleData(StrategyOpass, f)
			if err != nil {
				t.Fatal(err)
			}
			mix[j] = JobMixJob{Plan: plan, StartAt: float64(j) * 2}
		}
		reports, err := c.RunJobMix(mix, JobMixOptions{Balance: 0.5, Isolated: isolated})
		if err != nil {
			t.Fatal(err)
		}
		for j, rep := range reports {
			if rep.TasksRun != nodes*4 {
				t.Fatalf("isolated=%v job %d ran %d tasks, want %d", isolated, j, rep.TasksRun, nodes*4)
			}
			if rep.Arrival != mix[j].StartAt {
				t.Fatalf("isolated=%v job %d Arrival = %v, want %v", isolated, j, rep.Arrival, mix[j].StartAt)
			}
			if want := rep.Makespan - rep.Arrival; rep.JobMakespan != want {
				t.Fatalf("isolated=%v job %d JobMakespan = %v, want %v", isolated, j, rep.JobMakespan, want)
			}
			wantStrategy := "globalsched"
			if isolated {
				wantStrategy = string(StrategyOpass)
			}
			if rep.Strategy != wantStrategy {
				t.Fatalf("isolated=%v job %d strategy %q, want %q", isolated, j, rep.Strategy, wantStrategy)
			}
		}
	}
}

func TestRunJobMixValidation(t *testing.T) {
	c, files := jobMixCluster(t, 8, 1)
	plan, err := c.PlanSingleData(StrategyOpass, files[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunJobMix([]JobMixJob{{Plan: nil}}, JobMixOptions{}); err == nil {
		t.Fatal("RunJobMix accepted a nil plan")
	}
	if _, err := c.RunJobMix([]JobMixJob{{Plan: plan}}, JobMixOptions{Balance: 2}); err == nil {
		t.Fatal("RunJobMix accepted balance 2")
	}
}

func TestRunConcurrentContextCancelled(t *testing.T) {
	c, files := jobMixCluster(t, 8, 2)
	plans := make([]*Plan, len(files))
	for j, f := range files {
		p, err := c.PlanSingleData(StrategyOpass, f)
		if err != nil {
			t.Fatal(err)
		}
		plans[j] = p
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.RunConcurrentContext(ctx, plans); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The abort must leave the cluster reusable.
	reports, err := c.RunConcurrent(plans)
	if err != nil {
		t.Fatalf("rerun after abort failed: %v", err)
	}
	if len(reports) != 2 {
		t.Fatalf("rerun returned %d reports", len(reports))
	}
}
