// Package opass is a Go implementation of Opass — "Analysis and
// Optimization of Parallel Data Access on Distributed File Systems"
// (Yin et al., IEEE IPDPS 2015) — together with everything needed to
// reproduce the paper's evaluation: an HDFS-like distributed file system,
// a contention-aware cluster simulator calibrated to the PRObE Marmot
// testbed, the matching-based Opass planners, the locality-oblivious
// baselines, and the workloads of every figure in the paper.
//
// Opass assigns data-processing tasks to parallel processes so that reads
// from a replicated, randomly-placed distributed file system are served
// locally and in a balanced way. It models the process↔chunk locality
// relation as a bipartite graph and computes assignments with max-flow
// (single-input tasks), a stable-marriage-style matching (multi-input
// tasks), or locality-guided dynamic dispatch (master/worker execution).
//
// # Quick start
//
//	c, _ := opass.NewCluster(16)          // 16 simulated nodes
//	c.Store("/data", 16*10*64)            // 160 chunks of 64 MB, 3-way replicated
//	plan, _ := c.PlanSingleData(opass.StrategyOpass, "/data")
//	report, _ := c.Run(plan)
//	fmt.Println(report)
//
// The sub-packages under internal/ hold the building blocks (simnet, dfs,
// bipartite, core, engine, ...); this package is the stable facade over
// them.
package opass

import (
	"context"
	"fmt"

	"opass/internal/advisor"
	"opass/internal/cluster"
	"opass/internal/core"
	"opass/internal/delay"
	"opass/internal/dfs"
	"opass/internal/engine"
	"opass/internal/globalsched"
)

// Strategy names an assignment policy.
type Strategy string

// The assignment strategies available to planners.
const (
	// StrategyOpass is the paper's contribution: flow-based matching for
	// single-input tasks, Algorithm 1 for multi-input tasks.
	StrategyOpass Strategy = "opass"
	// StrategyRank is the ParaView-style baseline: contiguous task
	// intervals by process rank.
	StrategyRank Strategy = "rank"
	// StrategyRandom deals tasks to processes uniformly at random.
	StrategyRandom Strategy = "random"
	// StrategyGreedy is the near-linear-time heuristic variant of Opass's
	// planner (§V-C2 scalability future work): scarcest-task-first greedy
	// matching, typically within a few percent of the flow optimum.
	StrategyGreedy Strategy = "greedy"
)

// Master selects the dispatch policy of a dynamic (master/worker) run.
type Master string

// Dynamic masters.
const (
	// MasterAuto follows the plan's strategy: Opass plans use the §IV-D
	// scheduler, others the random master.
	MasterAuto Master = ""
	// MasterOpass uses the §IV-D guideline lists with locality-aware
	// stealing.
	MasterOpass Master = "opass"
	// MasterRandom hands an idle worker a uniformly random remaining task.
	MasterRandom Master = "random"
	// MasterDelay uses delay scheduling (Zaharia et al., EuroSys'10): an
	// idle worker briefly waits for a local task before accepting any.
	MasterDelay Master = "delay"
)

// Options configures a simulated cluster.
type Options struct {
	// Profile is the hardware calibration; the zero value means the Marmot
	// profile used in the paper.
	Profile cluster.Profile
	// Replication is the chunk replication factor (default 3).
	Replication int
	// ChunkMB is the chunk size in MB (default 64).
	ChunkMB float64
	// Seed makes all placement and scheduling randomness reproducible.
	Seed int64
	// Placement overrides the replica placement policy (default: uniform
	// random, like HDFS seen from an external writer).
	Placement dfs.Placement
	// Racks spreads nodes round-robin over this many racks (default 1).
	Racks int
}

// Cluster is a simulated compute/storage cluster running a distributed
// file system, with one data-processing process per node.
type Cluster struct {
	topo *cluster.Topology
	fs   *dfs.FileSystem
	seed int64
}

// NewCluster builds a cluster of n nodes with default options.
func NewCluster(n int) (*Cluster, error) {
	return NewClusterWithOptions(n, Options{})
}

// NewClusterWithOptions builds a cluster of n nodes.
func NewClusterWithOptions(n int, opts Options) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("opass: cluster size %d must be positive", n)
	}
	prof := opts.Profile
	if prof == (cluster.Profile{}) {
		prof = cluster.Marmot()
	}
	racks := opts.Racks
	if racks <= 0 {
		racks = 1
	}
	topo := cluster.NewRacked(n, racks, prof)
	fs := dfs.New(topo, dfs.Config{
		ChunkSizeMB: opts.ChunkMB,
		Replication: opts.Replication,
		Placement:   opts.Placement,
		Seed:        opts.Seed,
	})
	return &Cluster{topo: topo, fs: fs, seed: opts.Seed}, nil
}

// Topology exposes the underlying simulated hardware.
func (c *Cluster) Topology() *cluster.Topology { return c.topo }

// FS exposes the underlying distributed file system.
func (c *Cluster) FS() *dfs.FileSystem { return c.fs }

// NumNodes reports the cluster size.
func (c *Cluster) NumNodes() int { return c.topo.NumNodes() }

// Store writes a file of sizeMB into the DFS, chunked and replicated.
func (c *Cluster) Store(name string, sizeMB float64) error {
	_, err := c.fs.Create(name, sizeMB)
	return err
}

// StorePieces writes a file with explicit piece sizes (one chunk each).
func (c *Cluster) StorePieces(name string, sizesMB []float64) error {
	_, err := c.fs.CreateChunks(name, sizesMB)
	return err
}

// PieceRef names one stored piece: chunk index idx of file name.
type PieceRef struct {
	File  string
	Index int
}

// TaskSpec declares one multi-input task by its input pieces.
type TaskSpec struct {
	Inputs []PieceRef
}

// Plan is a computed task→process assignment ready to execute.
type Plan struct {
	Strategy   Strategy
	Assignment *core.Assignment
	Problem    *core.Problem
	// Dynamic marks the plan for master/worker execution instead of static
	// per-process lists.
	Dynamic bool
}

// Locality is the planned fraction of data that will be read locally.
func (p *Plan) Locality() float64 { return p.Assignment.LocalityFraction() }

func (c *Cluster) assigner(s Strategy, multi bool) (core.Assigner, error) {
	switch s {
	case StrategyOpass:
		if multi {
			return core.MultiData{Seed: c.seed}, nil
		}
		return core.SingleData{Seed: c.seed}, nil
	case StrategyRank:
		return core.RankStatic{}, nil
	case StrategyRandom:
		return core.RandomStatic{Seed: c.seed}, nil
	case StrategyGreedy:
		return core.GreedyLocality{Seed: c.seed}, nil
	default:
		return nil, fmt.Errorf("opass: unknown strategy %q", s)
	}
}

// PlanSingleData assigns one task per chunk of the given files, with every
// process receiving an equal share — the §IV-B planner under
// StrategyOpass.
func (c *Cluster) PlanSingleData(s Strategy, files ...string) (*Plan, error) {
	prob, err := core.SingleDataProblem(c.fs, files, c.procNodes())
	if err != nil {
		return nil, err
	}
	prob.SetNodeRacksFromView(c.fs.View())
	as, err := c.assigner(s, false)
	if err != nil {
		return nil, err
	}
	a, err := as.Assign(prob)
	if err != nil {
		return nil, err
	}
	return &Plan{Strategy: s, Assignment: a, Problem: prob}, nil
}

// PlanMultiData assigns multi-input tasks — Algorithm 1 under
// StrategyOpass.
func (c *Cluster) PlanMultiData(s Strategy, tasks []TaskSpec) (*Plan, error) {
	prob := &core.Problem{ProcNode: c.procNodes(), FS: c.fs}
	prob.SetNodeRacksFromView(c.fs.View())
	for i, spec := range tasks {
		task := core.Task{ID: i}
		for _, ref := range spec.Inputs {
			f, err := c.fs.Stat(ref.File)
			if err != nil {
				return nil, err
			}
			if ref.Index < 0 || ref.Index >= len(f.Chunks) {
				return nil, fmt.Errorf("opass: piece %d of %q out of range", ref.Index, ref.File)
			}
			chunk := c.fs.Chunk(f.Chunks[ref.Index])
			task.Inputs = append(task.Inputs, core.Input{Chunk: chunk.ID, SizeMB: chunk.SizeMB})
		}
		prob.Tasks = append(prob.Tasks, task)
	}
	as, err := c.assigner(s, true)
	if err != nil {
		return nil, err
	}
	a, err := as.Assign(prob)
	if err != nil {
		return nil, err
	}
	return &Plan{Strategy: s, Assignment: a, Problem: prob}, nil
}

// AsDynamic converts a static plan into a dynamic master/worker plan whose
// master follows the §IV-D rules (own list first, then locality-aware
// stealing from the longest list).
func (p *Plan) AsDynamic() *Plan {
	cp := *p
	cp.Dynamic = true
	return &cp
}

// RedistributionPlan describes the replica migrations that would make a
// plan fully local, and their cost.
type RedistributionPlan struct {
	// Migrations counts planned replica moves; MovedMB their total traffic.
	Migrations int
	MovedMB    float64
	// BreakEvenRuns is MovedMB divided by the remote traffic the plan
	// incurs per execution — how many runs amortize the migration.
	BreakEvenRuns float64

	inner *core.RedistributionPlan
	prob  *core.Problem
}

// PlanRedistribution computes the replica moves that would make every read
// of the plan local (the MRAP-style extension the paper cites as beyond
// scope). The cluster is not modified until Apply is called.
func (c *Cluster) PlanRedistribution(p *Plan) (*RedistributionPlan, error) {
	inner, err := core.PlanRedistribution(p.Problem, p.Assignment)
	if err != nil {
		return nil, err
	}
	return &RedistributionPlan{
		Migrations:    len(inner.Migrations),
		MovedMB:       inner.MovedMB,
		BreakEvenRuns: inner.BreakEvenRuns,
		inner:         inner,
		prob:          p.Problem,
	}, nil
}

// Apply executes the planned migrations against the cluster's file system.
func (rp *RedistributionPlan) Apply() error {
	return rp.inner.Apply(rp.prob)
}

// NodeFailure schedules a DataNode crash during a run (see RunOptions).
type NodeFailure = engine.NodeFailure

// AdvisorOptions tunes the adaptive replication advisor (NewAdvisor).
type AdvisorOptions struct {
	// HalfLife is the access-score decay half-life in seconds of virtual
	// time; scores of past reads halve every HalfLife seconds. Default:
	// roughly ten uncontended local chunk reads — long enough to see a
	// workload's shape, short enough that last phase's heat goes stale.
	HalfLife float64
	// Interval is the advisory period in seconds of virtual time (default
	// HalfLife/4).
	Interval float64
	// HotFactor / ColdFactor are the popularity-degree classification
	// thresholds; MinReplicas / MaxReplicas bound per-chunk redundancy;
	// BudgetMB caps the cluster's stored megabytes and MaxActions the
	// replica changes per pass. Zero values take the advisor's defaults
	// (see internal/advisor.Options).
	HotFactor   float64
	ColdFactor  float64
	MinReplicas int
	MaxReplicas int
	BudgetMB    float64
	MaxActions  int
}

// Advisor is the adaptive replication loop bound to one cluster: reads
// recorded by runs feed its access accounting, and periodic passes during
// advised runs re-point replicas at the demand (see RunOptions.Advisor).
type Advisor struct {
	inner    *advisor.Advisor
	interval float64
}

// AdvisorStats reports an advisor's cumulative actions and the hot/warm/
// cold classification at its last pass.
type AdvisorStats struct {
	Ticks           int
	ReplicasAdded   int
	ReplicasRemoved int
	TargetsRaised   int
	TargetsLowered  int
	Hot, Warm, Cold int
}

// Stats returns the advisor's counters.
func (a *Advisor) Stats() AdvisorStats {
	st := a.inner.Stats()
	return AdvisorStats{
		Ticks:           st.Ticks,
		ReplicasAdded:   st.ReplicasAdded,
		ReplicasRemoved: st.ReplicasRemoved,
		TargetsRaised:   st.TargetsRaised,
		TargetsLowered:  st.TargetsLowered,
		Hot:             st.Hot,
		Warm:            st.Warm,
		Cold:            st.Cold,
	}
}

// NewAdvisor enables per-chunk access accounting on the cluster's file
// system and builds a replication advisor over it. Pass the advisor to
// RunWithOptions to let it adjust replication while plans execute; runs
// without it still feed the accounting.
func (c *Cluster) NewAdvisor(opts AdvisorOptions) (*Advisor, error) {
	halfLife := opts.HalfLife
	if halfLife == 0 {
		halfLife = 10 * c.topo.UncontendedLocalRead(c.fs.Config().ChunkSizeMB)
	}
	interval := opts.Interval
	if interval == 0 {
		interval = halfLife / 4
	}
	if interval <= 0 {
		return nil, fmt.Errorf("opass: advisor interval %v must be positive", interval)
	}
	c.fs.EnableAccessStats(halfLife)
	inner, err := advisor.New(c.fs, advisor.Options{
		HotFactor:   opts.HotFactor,
		ColdFactor:  opts.ColdFactor,
		MinReplicas: opts.MinReplicas,
		MaxReplicas: opts.MaxReplicas,
		BudgetMB:    opts.BudgetMB,
		MaxActions:  opts.MaxActions,
	})
	if err != nil {
		return nil, err
	}
	return &Advisor{inner: inner, interval: interval}, nil
}

// RunOptions tune an execution.
type RunOptions struct {
	// ComputeTime, when non-nil, gives each task's post-read compute time
	// in seconds.
	ComputeTime func(task int) float64
	// Master selects the dispatch policy for dynamic plans (MasterAuto
	// follows the plan's strategy).
	Master Master
	// DelayMaxSkips is the D parameter of MasterDelay (default 3).
	DelayMaxSkips int
	// Failures schedules DataNode crashes during the run; in-flight reads
	// served by a crashed node fail over to surviving replicas.
	Failures []NodeFailure
	// Advisor, when non-nil, runs adaptive replication passes during the
	// execution (static plans only): the advisor may add, remove or re-point
	// replicas mid-run, and the not-yet-started backlog is re-matched
	// against the new placement after every pass that changed something.
	Advisor *Advisor
}

// Run executes a plan on the cluster and reports the trace statistics.
func (c *Cluster) Run(p *Plan) (*Report, error) {
	return c.RunWithOptions(p, RunOptions{})
}

// RunWithOptions executes a plan with tuning options.
func (c *Cluster) RunWithOptions(p *Plan, opts RunOptions) (*Report, error) {
	eopts := engine.Options{
		Topo:        c.topo,
		FS:          c.fs,
		Problem:     p.Problem,
		ComputeTime: opts.ComputeTime,
		Failures:    opts.Failures,
		Strategy:    string(p.Strategy),
	}
	if opts.Advisor != nil {
		if p.Dynamic {
			return nil, fmt.Errorf("opass: the replication advisor requires a static plan (dynamic backlogs cannot be re-matched)")
		}
		eopts.Advisor = opts.Advisor.inner
		eopts.AdvisorInterval = opts.Advisor.interval
		eopts.Replan = true
		eopts.ReplanSeed = c.seed
	}
	var (
		res *engine.Result
		err error
	)
	if p.Dynamic {
		master := opts.Master
		if master == MasterAuto {
			if p.Strategy == StrategyOpass || p.Strategy == StrategyGreedy {
				master = MasterOpass
			} else {
				master = MasterRandom
			}
		}
		var src engine.TaskSource
		switch master {
		case MasterOpass:
			src, err = core.NewDynamicScheduler(p.Problem, p.Assignment)
			if err != nil {
				return nil, err
			}
		case MasterDelay:
			skips := opts.DelayMaxSkips
			if skips <= 0 {
				skips = 3
			}
			src = delay.NewDispatcher(p.Problem, skips, c.seed)
		case MasterRandom:
			src = core.NewRandomDispatcher(p.Problem, c.seed)
		default:
			return nil, fmt.Errorf("opass: unknown master %q", master)
		}
		res, err = engine.Run(eopts, src)
	} else {
		res, err = engine.RunAssignment(eopts, p.Assignment)
	}
	if err != nil {
		return nil, err
	}
	return newReport(res), nil
}

// RunConcurrent executes several plans simultaneously on the cluster — the
// shared-cluster scenario of §V-C1, where one application's reads contend
// with another's. Dynamic plans use their strategy's master; static plans
// walk their lists. Reports are returned in plan order.
func (c *Cluster) RunConcurrent(plans []*Plan) ([]*Report, error) {
	return c.RunConcurrentContext(context.Background(), plans)
}

// RunConcurrentContext is RunConcurrent under cooperative cancellation: a
// cancelled or expired context aborts the mix mid-simulation, tearing down
// every in-flight flow so the cluster's network returns to idle.
func (c *Cluster) RunConcurrentContext(ctx context.Context, plans []*Plan) ([]*Report, error) {
	jobs := make([]engine.JobSpec, len(plans))
	for i, p := range plans {
		var src engine.TaskSource
		if p.Dynamic {
			if p.Strategy == StrategyOpass || p.Strategy == StrategyGreedy {
				sched, err := core.NewDynamicScheduler(p.Problem, p.Assignment)
				if err != nil {
					return nil, err
				}
				src = sched
			} else {
				src = core.NewRandomDispatcher(p.Problem, c.seed+int64(i))
			}
		} else {
			src = engine.NewListSource(p.Assignment.Lists)
		}
		jobs[i] = engine.JobSpec{
			Problem:  p.Problem,
			Source:   src,
			Strategy: string(p.Strategy),
		}
	}
	results, err := engine.RunJobsContext(ctx, c.topo, c.fs, jobs)
	if err != nil {
		return nil, err
	}
	reports := make([]*Report, len(results))
	for i, res := range results {
		reports[i] = newReport(res)
	}
	return reports, nil
}

// JobMixJob is one application of a staggered job mix: a planned problem
// and its arrival time.
type JobMixJob struct {
	// Plan carries the job's problem. Under global scheduling only the
	// problem matters — the scheduler replans it at arrival against the
	// residual cluster; Plan.Assignment is the job's isolated fallback.
	Plan *Plan
	// StartAt is the job's arrival delay in seconds of virtual time.
	StartAt float64
}

// JobMixOptions tunes RunJobMix.
type JobMixOptions struct {
	// Balance is the locality-vs-global-balance knob in [0, 1] (see
	// internal/globalsched): 0 plans each job in isolation even at arrival,
	// 1 plans purely by residual node headroom.
	Balance float64
	// Isolated disables the cluster scheduler entirely: every job runs its
	// own precomputed Plan.Assignment — the uncoordinated baseline the
	// globally-scheduled run is compared against.
	Isolated bool
}

// RunJobMix executes a staggered mix of jobs under the cluster-level
// scheduler (or, with Isolated, as uncoordinated per-job plans). Each
// report's JobMakespan is measured from the job's own arrival.
func (c *Cluster) RunJobMix(jobs []JobMixJob, opts JobMixOptions) ([]*Report, error) {
	return c.RunJobMixContext(context.Background(), jobs, opts)
}

// RunJobMixContext is RunJobMix under cooperative cancellation.
func (c *Cluster) RunJobMixContext(ctx context.Context, jobs []JobMixJob, opts JobMixOptions) ([]*Report, error) {
	specs := make([]engine.JobSpec, len(jobs))
	for i, j := range jobs {
		if j.Plan == nil {
			return nil, fmt.Errorf("opass: job %d has no plan", i)
		}
		specs[i] = engine.JobSpec{
			Problem:  j.Plan.Problem,
			Strategy: string(j.Plan.Strategy),
			StartAt:  j.StartAt,
		}
		if opts.Isolated {
			specs[i].Source = engine.NewListSource(j.Plan.Assignment.Lists)
		}
	}
	var sched engine.ClusterScheduler
	if !opts.Isolated {
		gsOpts := globalsched.Options{
			Balance: opts.Balance,
			Seed:    c.seed,
		}
		if c.topo.NumRacks() > 1 {
			racks := make([]int, c.topo.NumNodes())
			for i := range racks {
				racks[i] = c.topo.RackOf(i)
			}
			gsOpts.NodeRack = racks
		}
		gs, err := globalsched.New(c.NumNodes(), gsOpts)
		if err != nil {
			return nil, err
		}
		sched = gs
		for i := range specs {
			specs[i].Strategy = "globalsched"
		}
	}
	results, err := engine.RunJobsScheduled(ctx, c.topo, c.fs, specs, sched)
	if err != nil {
		return nil, err
	}
	reports := make([]*Report, len(results))
	for i, res := range results {
		reports[i] = newReport(res)
	}
	return reports, nil
}

func (c *Cluster) procNodes() []int {
	procs := make([]int, c.topo.NumNodes())
	for i := range procs {
		procs[i] = i
	}
	return procs
}
