package opass

import (
	"strings"
	"testing"

	"opass/internal/dfs"
)

func TestQuickstartFlow(t *testing.T) {
	c, err := NewCluster(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store("/data", 16*10*64); err != nil {
		t.Fatal(err)
	}
	plan, err := c.PlanSingleData(StrategyOpass, "/data")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Locality() < 0.9 {
		t.Fatalf("planned locality %v, want >= 0.9", plan.Locality())
	}
	rep, err := c.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TasksRun != 160 {
		t.Fatalf("tasks = %d, want 160", rep.TasksRun)
	}
	if rep.LocalFraction < 0.9 {
		t.Fatalf("executed locality %v", rep.LocalFraction)
	}
	if !strings.Contains(rep.String(), "opass") {
		t.Fatalf("report string %q", rep.String())
	}
	if !strings.Contains(rep.Table(), "makespan") {
		t.Fatal("table missing makespan")
	}
}

func TestStrategiesCompared(t *testing.T) {
	build := func() *Cluster {
		c, err := NewClusterWithOptions(16, Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Store("/data", 16*10*64); err != nil {
			t.Fatal(err)
		}
		return c
	}
	cRank := build()
	pRank, err := cRank.PlanSingleData(StrategyRank, "/data")
	if err != nil {
		t.Fatal(err)
	}
	rRank, err := cRank.Run(pRank)
	if err != nil {
		t.Fatal(err)
	}
	cOp := build()
	pOp, err := cOp.PlanSingleData(StrategyOpass, "/data")
	if err != nil {
		t.Fatal(err)
	}
	rOp, err := cOp.Run(pOp)
	if err != nil {
		t.Fatal(err)
	}
	if rOp.IO.Mean >= rRank.IO.Mean {
		t.Fatalf("opass mean IO %v >= rank %v", rOp.IO.Mean, rRank.IO.Mean)
	}
	if rOp.Fairness <= rRank.Fairness {
		t.Fatalf("opass fairness %v <= rank %v", rOp.Fairness, rRank.Fairness)
	}
	out := Compare(rRank, rOp)
	if !strings.Contains(out, "avg I/O time") || !strings.Contains(out, "gain") {
		t.Fatalf("compare output:\n%s", out)
	}
}

func TestMultiDataPlan(t *testing.T) {
	c, err := NewClusterWithOptions(8, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	n := 8 * 4
	sizes := func(sz float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = sz
		}
		return out
	}
	for name, sz := range map[string]float64{"/human": 30, "/mouse": 20, "/chimp": 10} {
		if err := c.StorePieces(name, sizes(sz)); err != nil {
			t.Fatal(err)
		}
	}
	tasks := make([]TaskSpec, n)
	for i := range tasks {
		tasks[i] = TaskSpec{Inputs: []PieceRef{
			{File: "/human", Index: i},
			{File: "/mouse", Index: i},
			{File: "/chimp", Index: i},
		}}
	}
	plan, err := c.PlanMultiData(StrategyOpass, tasks)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TasksRun != n {
		t.Fatalf("tasks = %d, want %d", rep.TasksRun, n)
	}
	if len(rep.IOTimes) != n*3 {
		t.Fatalf("reads = %d, want %d", len(rep.IOTimes), n*3)
	}
}

func TestDynamicPlanExecution(t *testing.T) {
	c, err := NewClusterWithOptions(8, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store("/data", 8*5*64); err != nil {
		t.Fatal(err)
	}
	plan, err := c.PlanSingleData(StrategyOpass, "/data")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.RunWithOptions(plan.AsDynamic(), RunOptions{
		ComputeTime: func(task int) float64 { return 0.1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TasksRun != 40 {
		t.Fatalf("tasks = %d, want 40", rep.TasksRun)
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := NewCluster(0); err == nil {
		t.Fatal("zero nodes must fail")
	}
	c, _ := NewCluster(4)
	if _, err := c.PlanSingleData(StrategyOpass, "/missing"); err == nil {
		t.Fatal("missing file must fail")
	}
	c.Store("/d", 64)
	if _, err := c.PlanSingleData(Strategy("bogus"), "/d"); err == nil {
		t.Fatal("bogus strategy must fail")
	}
	if _, err := c.PlanMultiData(StrategyOpass, []TaskSpec{
		{Inputs: []PieceRef{{File: "/d", Index: 99}}},
	}); err == nil {
		t.Fatal("out-of-range piece must fail")
	}
}

func TestOptionsPropagate(t *testing.T) {
	c, err := NewClusterWithOptions(6, Options{
		Replication: 2,
		ChunkMB:     32,
		Seed:        9,
		Placement:   dfs.RoundRobinPlacement{},
		Racks:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store("/data", 6*32); err != nil {
		t.Fatal(err)
	}
	if c.FS().NumChunks() != 6 {
		t.Fatalf("chunks = %d, want 6 (32 MB chunk size)", c.FS().NumChunks())
	}
	locs, _ := c.FS().BlockLocations("/data")
	for _, l := range locs {
		if len(l.Replicas) != 2 {
			t.Fatalf("replication = %d, want 2", len(l.Replicas))
		}
	}
	if c.Topology().NumRacks() != 2 {
		t.Fatal("racks option lost")
	}
}

func TestGreedyStrategyFacade(t *testing.T) {
	c, err := NewClusterWithOptions(8, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store("/data", 8*10*64); err != nil {
		t.Fatal(err)
	}
	plan, err := c.PlanSingleData(StrategyGreedy, "/data")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Locality() < 0.85 {
		t.Fatalf("greedy locality %v", plan.Locality())
	}
	rep, err := c.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TasksRun != 80 {
		t.Fatalf("tasks = %d", rep.TasksRun)
	}
}

func TestMasterSelection(t *testing.T) {
	build := func() (*Cluster, *Plan) {
		c, err := NewClusterWithOptions(8, Options{Seed: 12})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Store("/data", 8*5*64); err != nil {
			t.Fatal(err)
		}
		plan, err := c.PlanSingleData(StrategyOpass, "/data")
		if err != nil {
			t.Fatal(err)
		}
		return c, plan.AsDynamic()
	}
	for _, master := range []Master{MasterAuto, MasterOpass, MasterRandom, MasterDelay} {
		c, plan := build()
		rep, err := c.RunWithOptions(plan, RunOptions{Master: master})
		if err != nil {
			t.Fatalf("master %q: %v", master, err)
		}
		if rep.TasksRun != 40 {
			t.Fatalf("master %q ran %d tasks", master, rep.TasksRun)
		}
	}
	c, plan := build()
	if _, err := c.RunWithOptions(plan, RunOptions{Master: Master("bogus")}); err == nil {
		t.Fatal("bogus master must fail")
	}
}

func TestFacadeRedistribution(t *testing.T) {
	c, err := NewClusterWithOptions(8, Options{Seed: 21, Placement: dfs.ClusteredPlacement{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store("/data", 8*5*64); err != nil {
		t.Fatal(err)
	}
	plan, err := c.PlanSingleData(StrategyOpass, "/data")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Locality() >= 1 {
		t.Fatal("fixture should start partially local")
	}
	rp, err := c.PlanRedistribution(plan)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Migrations == 0 || rp.MovedMB == 0 {
		t.Fatalf("empty redistribution plan: %+v", rp)
	}
	if err := rp.Apply(); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LocalFraction != 1.0 {
		t.Fatalf("post-migration locality %v", rep.LocalFraction)
	}
}

func TestFacadeFailureInjection(t *testing.T) {
	c, err := NewClusterWithOptions(8, Options{Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store("/data", 8*10*64); err != nil {
		t.Fatal(err)
	}
	plan, err := c.PlanSingleData(StrategyOpass, "/data")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.RunWithOptions(plan, RunOptions{
		Failures: []NodeFailure{{Node: 2, At: 1.0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TasksRun != 80 {
		t.Fatalf("tasks = %d", rep.TasksRun)
	}
	if rep.LocalFraction >= 1.0 {
		t.Fatalf("crash should cost some locality: %v", rep.LocalFraction)
	}
}

func TestRunConcurrent(t *testing.T) {
	c, err := NewClusterWithOptions(8, Options{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store("/a", 8*5*64); err != nil {
		t.Fatal(err)
	}
	if err := c.Store("/b", 8*5*64); err != nil {
		t.Fatal(err)
	}
	pa, err := c.PlanSingleData(StrategyOpass, "/a")
	if err != nil {
		t.Fatal(err)
	}
	pb, err := c.PlanSingleData(StrategyRank, "/b")
	if err != nil {
		t.Fatal(err)
	}
	reports, err := c.RunConcurrent([]*Plan{pa, pb.AsDynamic()})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	for i, rep := range reports {
		if rep.TasksRun != 40 {
			t.Fatalf("plan %d ran %d tasks", i, rep.TasksRun)
		}
	}
	// The opass job keeps its locality despite the noisy neighbor.
	if reports[0].LocalFraction < 0.9 {
		t.Fatalf("opass locality %v under co-running job", reports[0].LocalFraction)
	}
}

func TestFacadeAdvisor(t *testing.T) {
	c, err := NewClusterWithOptions(8, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store("/hot", 8*4*64); err != nil {
		t.Fatal(err)
	}
	if err := c.Store("/cold", 8*4*64); err != nil {
		t.Fatal(err)
	}
	adv, err := c.NewAdvisor(AdvisorOptions{Interval: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := c.PlanSingleData(StrategyOpass, "/hot")
	if err != nil {
		t.Fatal(err)
	}
	budget := c.FS().TotalStoredMB()
	for i := 0; i < 3; i++ {
		rep, err := c.RunWithOptions(plan, RunOptions{Advisor: adv})
		if err != nil {
			t.Fatal(err)
		}
		if rep.TasksRun != 32 {
			t.Fatalf("run %d executed %d tasks", i, rep.TasksRun)
		}
	}
	st := adv.Stats()
	if st.Ticks == 0 {
		t.Fatal("advisor never ticked across three runs")
	}
	if got := c.FS().TotalStoredMB(); got > budget+1e-9 {
		t.Fatalf("stored %v MB exceeds the initial %v MB", got, budget)
	}
	if problems := c.FS().Fsck(); len(problems) != 0 {
		t.Fatalf("fsck after advised runs: %v", problems)
	}
	// Dynamic plans have no re-matchable backlog; the advisor is refused.
	if _, err := c.RunWithOptions(plan.AsDynamic(), RunOptions{Advisor: adv}); err == nil {
		t.Fatal("advisor accepted a dynamic plan")
	}
}
