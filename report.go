package opass

import (
	"fmt"
	"strings"

	"opass/internal/engine"
	"opass/internal/metrics"
)

// Report summarizes one executed plan with the statistics the paper
// reports: per-request I/O time distribution, per-node data-served balance,
// locality, and job makespan.
type Report struct {
	Strategy string
	// IOTimes holds each chunk read's duration in completion order (the
	// trace plotted in Figures 7c, 9, 11 and 12).
	IOTimes []float64
	// IO summarizes IOTimes (avg/max/min/stddev — Figures 7a/7b).
	IO metrics.Summary
	// ServedMB is the data served per storage node (Figures 8 and 10).
	ServedMB []float64
	// Served summarizes ServedMB across nodes.
	Served metrics.Summary
	// LocalFraction is the fraction of bytes read from the reader's own
	// disk.
	LocalFraction float64
	// Makespan is the job's virtual execution time in seconds, measured
	// from the start of the run (which, in a concurrent mix, may predate
	// the job's arrival).
	Makespan float64
	// Arrival is when the job's processes were released, relative to run
	// start (0 for single-job runs); JobMakespan is completion minus
	// arrival — the latency the job's owner observes in a staggered mix.
	Arrival     float64
	JobMakespan float64
	// Fairness is Jain's index over ServedMB (1.0 = perfectly balanced).
	Fairness float64
	// TasksRun counts executed tasks.
	TasksRun int
	// RackLocalMB / CrossRackMB split the remote bytes by rack boundary:
	// remote reads served within the reader's rack vs reads that crossed a
	// rack uplink. Both are zero when every read was local; on a
	// single-rack topology CrossRackMB is always zero.
	RackLocalMB float64
	CrossRackMB float64

	res *engine.Result
}

func newReport(res *engine.Result) *Report {
	io := res.IOTimes()
	return &Report{
		Strategy:      res.Strategy,
		IOTimes:       io,
		IO:            metrics.Summarize(io),
		ServedMB:      append([]float64(nil), res.ServedMB...),
		Served:        metrics.Summarize(res.ServedMB),
		LocalFraction: res.LocalFraction(),
		Makespan:      res.Makespan,
		Arrival:       res.Arrival,
		JobMakespan:   res.JobMakespan(),
		Fairness:      metrics.JainIndex(res.ServedMB),
		TasksRun:      res.TasksRun,
		RackLocalMB:   res.RackLocalMB,
		CrossRackMB:   res.CrossRackMB,
		res:           res,
	}
}

// Raw exposes the underlying engine result for detailed inspection.
func (r *Report) Raw() *engine.Result { return r.res }

// ReportOf wraps a raw engine result in a Report — for tools that drive the
// execution engine directly (custom sources, multi-job runs, trace replay).
func ReportOf(res *engine.Result) *Report { return newReport(res) }

// String renders a one-line summary.
func (r *Report) String() string {
	return fmt.Sprintf("%s: tasks=%d makespan=%.2fs io[avg=%.2fs min=%.2fs max=%.2fs] local=%.1f%% fairness=%.3f",
		r.Strategy, r.TasksRun, r.Makespan, r.IO.Mean, r.IO.Min, r.IO.Max, 100*r.LocalFraction, r.Fairness)
}

// Table renders a multi-line human-readable report.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "strategy          %s\n", r.Strategy)
	fmt.Fprintf(&b, "tasks run         %d\n", r.TasksRun)
	fmt.Fprintf(&b, "makespan          %.2f s\n", r.Makespan)
	fmt.Fprintf(&b, "I/O time          avg %.3f s  min %.3f s  max %.3f s  sd %.3f s\n",
		r.IO.Mean, r.IO.Min, r.IO.Max, r.IO.StdDev)
	fmt.Fprintf(&b, "data served/node  avg %.0f MB  min %.0f MB  max %.0f MB\n",
		r.Served.Mean, r.Served.Min, r.Served.Max)
	fmt.Fprintf(&b, "local reads       %.1f%% of bytes\n", 100*r.LocalFraction)
	if r.RackLocalMB > 0 || r.CrossRackMB > 0 {
		fmt.Fprintf(&b, "remote bytes      rack-local %.0f MB  cross-rack %.0f MB\n",
			r.RackLocalMB, r.CrossRackMB)
	}
	fmt.Fprintf(&b, "balance (Jain)    %.3f\n", r.Fairness)
	return b.String()
}

// Compare renders a side-by-side comparison of two reports, baseline first,
// in the style of the paper's "with/without Opass" figures.
func Compare(baseline, opt *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %14s %14s %8s\n", "metric", baseline.Strategy, opt.Strategy, "gain")
	row := func(name string, bv, ov float64, higherBetter bool) {
		num, den := bv, ov
		if higherBetter {
			num, den = ov, bv
		}
		gain := "     n/a"
		if den > 1e-9 {
			gain = fmt.Sprintf("%7.2fx", num/den)
		}
		fmt.Fprintf(&b, "%-22s %14.3f %14.3f %s\n", name, bv, ov, gain)
	}
	row("avg I/O time (s)", baseline.IO.Mean, opt.IO.Mean, false)
	row("max I/O time (s)", baseline.IO.Max, opt.IO.Max, false)
	row("I/O time stddev (s)", baseline.IO.StdDev, opt.IO.StdDev, false)
	row("makespan (s)", baseline.Makespan, opt.Makespan, false)
	row("max served/node (MB)", baseline.Served.Max, opt.Served.Max, false)
	row("local bytes fraction", baseline.LocalFraction, opt.LocalFraction, true)
	if baseline.CrossRackMB > 0 || opt.CrossRackMB > 0 {
		row("cross-rack bytes (MB)", baseline.CrossRackMB, opt.CrossRackMB, false)
	}
	row("fairness (Jain)", baseline.Fairness, opt.Fairness, true)
	return b.String()
}
